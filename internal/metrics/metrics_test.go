package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	g := r.Gauge("inflight", "in-flight")
	c.Inc()
	c.Add(2.5)
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(-0.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %g, want 3.5", got)
	}
	if got := g.Value(); got != 0.5 {
		t.Errorf("gauge = %g, want 0.5", got)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %g, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-80) > 1e-9 {
		t.Errorf("histogram sum = %g, want 80", h.Sum())
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("queries_total", "queries", "algo", "outcome")
	v.With("cmc", "ok").Add(3)
	v.With("cuts*", "ok").Inc()
	v.With("cmc", "ok").Inc() // same series
	if got := v.With("cmc", "ok").Value(); got != 4 {
		t.Errorf("cmc/ok = %g, want 4", got)
	}
	if got := v.With("cuts*", "ok").Value(); got != 1 {
		t.Errorf("cuts*/ok = %g, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup_total", "")
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniformly in (0, 1]: p50 ≈ 0.5 within the first
	// bucket by interpolation.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%10) / 10.0001) // 0 .. 0.9, all ≤ 1
	}
	if q := h.Quantile(0.5); q < 0.4 || q > 0.6 {
		t.Errorf("p50 = %g, want ≈ 0.5", q)
	}
	// Everything beyond the last bound clamps to it.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	h2.Observe(60)
	if q := h2.Quantile(0.99); q != 2 {
		t.Errorf("overflow p99 = %g, want clamp to 2", q)
	}
	// Empty histogram quantile is 0.
	if q := NewHistogram(nil).Quantile(0.9); q != 0 {
		t.Errorf("empty p90 = %g, want 0", q)
	}
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a").Add(2)
	r.GaugeFunc("b_items", "live items", func() float64 { return 7 })
	hv := r.HistogramVec("lat_seconds", "latency", []float64{0.1, 1}, "route")
	hv.With("/v1/query").Observe(0.05)
	hv.With("/v1/query").Observe(0.5)
	cv := r.CounterVec("ops_total", "ops", "kind")
	cv.With(`we"ird`).Inc()

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total 2\n",
		"# TYPE b_items gauge\nb_items 7\n",
		`lat_seconds_bucket{route="/v1/query",le="0.1"} 1`,
		`lat_seconds_bucket{route="/v1/query",le="1"} 2`,
		`lat_seconds_bucket{route="/v1/query",le="+Inf"} 2`,
		`lat_seconds_sum{route="/v1/query"} 0.55`,
		`lat_seconds_count{route="/v1/query"} 2`,
		`ops_total{kind="we\"ird"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Add(5)
	r.CounterVec("y_total", "", "a", "b").With("v 1", "v2").Add(3)
	r.Histogram("z_seconds", "", []float64{1}).Observe(0.5)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	m, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if m["x_total"] != 5 {
		t.Errorf("x_total = %g, want 5", m["x_total"])
	}
	if m[`y_total{a="v 1",b="v2"}`] != 3 {
		t.Errorf("labeled value = %v", m)
	}
	if m["z_seconds_count"] != 1 || m["z_seconds_sum"] != 0.5 {
		t.Errorf("histogram series = %v", m)
	}
	if got := Sum(m, "y_total"); got != 3 {
		t.Errorf("Sum(y_total) = %g, want 3", got)
	}
	// Sum must not leak into suffixed families.
	if got := Sum(m, "z_seconds"); got != 0 {
		t.Errorf("Sum(z_seconds) = %g, want 0 (only _bucket/_sum/_count series exist)", got)
	}
	fams := Families(m)
	joined := strings.Join(fams, ",")
	if !strings.Contains(joined, "x_total") || !strings.Contains(joined, "z_seconds_bucket") {
		t.Errorf("families = %v", fams)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"name_only",
		"x{a=\"1\" 5",
		"x notanumber",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", bad)
		}
	}
	m, err := ParseText(strings.NewReader("# HELP x y\n\nx 1 1700000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m["x"] != 1 {
		t.Errorf("timestamped sample = %v", m)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	h := r.Histogram("h_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	snap := r.Snapshot()
	if snap["c_total"] != 2 {
		t.Errorf("snapshot counter = %v", snap)
	}
	if snap["h_seconds_count"] != 2 || snap["h_seconds_sum"] != 2 {
		t.Errorf("snapshot histogram = %v", snap)
	}
	if p50 := snap["h_seconds_p50"]; p50 <= 0 || p50 > 2 {
		t.Errorf("snapshot p50 = %g", p50)
	}
}
