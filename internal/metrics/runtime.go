package metrics

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches one runtime.MemStats snapshot for a short TTL so
// that exposition-time gauges never trigger more than one
// stop-the-world ReadMemStats per second, however many scrapers and
// gauges read through it.
type memSampler struct {
	mu   sync.Mutex
	last time.Time
	ms   runtime.MemStats
}

func (s *memSampler) read() (heapAlloc, gcPauseSeconds float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.last) > time.Second || s.last.IsZero() {
		runtime.ReadMemStats(&s.ms)
		s.last = time.Now()
	}
	return float64(s.ms.HeapAlloc), float64(s.ms.PauseTotalNs) / 1e9
}

// RegisterRuntime registers Go runtime health gauges on the registry —
// goroutine count, GOMAXPROCS, live heap bytes, and cumulative GC pause
// seconds — so soak reports and dashboards capture runtime health next
// to request counters. Values are read at exposition time; memory stats
// are sampled at most once per second. Registering the same registry
// twice panics, like any duplicate metric registration.
func RegisterRuntime(r *Registry) {
	s := &memSampler{}
	r.GaugeFunc("go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_gomaxprocs",
		"Value of GOMAXPROCS: the scheduler's OS-thread parallelism cap.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 { h, _ := s.read(); return h })
	r.GaugeFunc("go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause seconds since process start.",
		func() float64 { _, p := s.read(); return p })
}
