package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseText parses a Prometheus text exposition (the format WriteProm
// emits; any 0.0.4 exposition works) into series-name → value, keyed
// exactly like Snapshot: `name` or `name{label="v",...}`. Comment and
// blank lines are skipped; a malformed sample line is an error. The load
// generator uses this to read back the server's own request accounting.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Drop an OpenMetrics exemplar suffix (` # {trace_id="..."} v ts`)
		// before locating the series key: the exemplar's own '}' would
		// otherwise be mistaken for the label set's closing brace. This
		// assumes label values never contain " # ", which holds for every
		// exposition this repository produces.
		if i := strings.Index(line, " # "); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		// Label values may contain spaces, so the series key cannot be
		// found by splitting on whitespace alone: when a label set is
		// present the key runs to its closing brace (the last '}' on the
		// line — the fields after it are numeric), otherwise to the first
		// whitespace. The value is the first field after the key; an
		// optional trailing timestamp is ignored.
		var key, rest string
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				return nil, fmt.Errorf("metrics: parse line %d: unterminated label set in %q", lineNo, line)
			}
			key, rest = line[:j+1], line[j+1:]
		} else if cut := strings.IndexAny(line, " \t"); cut >= 0 {
			key, rest = line[:cut], line[cut:]
		} else {
			return nil, fmt.Errorf("metrics: parse line %d: no value in %q", lineNo, line)
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return nil, fmt.Errorf("metrics: parse line %d: no value in %q", lineNo, line)
		}
		val, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: parse line %d: bad value in %q: %v", lineNo, line, err)
		}
		out[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: parse: %w", err)
	}
	return out, nil
}

// FamilyName extracts the family of a parsed series key — the part before
// the label set.
func FamilyName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// Sum adds up every series of exactly the given family in a ParseText
// result: `family` and `family{...}` match; `family_bucket` and other
// suffixed families do not.
func Sum(samples map[string]float64, family string) float64 {
	total := 0.0
	for k, v := range samples {
		if k == family || strings.HasPrefix(k, family+"{") {
			total += v
		}
	}
	return total
}

// Families lists the distinct family names of a ParseText result,
// sorted — a convenience for reports that enumerate what a server
// exposes.
func Families(samples map[string]float64) []string {
	seen := make(map[string]bool)
	for k := range samples {
		seen[FamilyName(k)] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
