package metrics

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WriteProm renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families name-sorted and series
// label-sorted, so scrapes are diffable.
func (r *Registry) WriteProm(w io.Writer) error {
	return r.writeText(w, false)
}

// WriteOpenMetrics renders the registry in an OpenMetrics-flavoured text
// form: identical to WriteProm except that histogram bucket lines carry
// their exemplars (` # {trace_id="..."} value timestamp`) and the output
// ends with `# EOF`. It is how a latency bucket is correlated with a
// concrete trace in /debug/traces.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.writeText(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (r *Registry) writeText(w io.Writer, exemplars bool) error {
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		if f.kind == kindGaugeFunc {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, fmtVal(f.fn())); err != nil {
				return err
			}
			continue
		}
		for _, s := range f.sorted() {
			if err := writeSeries(w, f, s, exemplars); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series, exemplars bool) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelSet(f.labels, s.labelValues, ""), fmtVal(s.c.Value()))
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelSet(f.labels, s.labelValues, ""), fmtVal(s.g.Value()))
		return err
	default: // histogram
		cum := s.h.cumulative()
		bucket := func(i int, le string) error {
			suffix := ""
			if exemplars {
				if e := s.h.exemplarFor(i); e != nil {
					suffix = fmt.Sprintf(" # {trace_id=\"%s\"} %s %.3f", escapeLabel(e.traceID), fmtVal(e.value), e.unix)
				}
			}
			_, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, labelSet(f.labels, s.labelValues, le), cum[i], suffix)
			return err
		}
		for i, bound := range s.h.bounds {
			if err := bucket(i, fmtVal(bound)); err != nil {
				return err
			}
		}
		if err := bucket(len(cum)-1, "+Inf"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelSet(f.labels, s.labelValues, ""), fmtVal(s.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelSet(f.labels, s.labelValues, ""), s.h.Count())
		return err
	}
}

// labelSet renders {a="x",b="y"} (plus le when non-empty); "" when there
// are no labels at all.
func labelSet(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func fmtVal(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler serves the registry as a Prometheus scrape target. A scraper
// that negotiates OpenMetrics (an Accept header naming
// application/openmetrics-text, or ?exemplars=1 for humans with curl)
// gets the exemplar-bearing exposition; everyone else gets the plain
// 0.0.4 text format, byte-identical to before exemplars existed.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") ||
			req.URL.Query().Get("exemplars") == "1" {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w) // the peer going away mid-scrape is its problem
	})
}

// Snapshot flattens the registry into series-name → value: plain names for
// label-less metrics, name{label="value",...} for labeled ones, histograms
// as _sum/_count plus p50/p95/p99 convenience quantiles. This is both the
// expvar mirror's payload and a convenient test observable.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		if f.kind == kindGaugeFunc {
			out[f.name] = f.fn()
			continue
		}
		for _, s := range f.sorted() {
			ls := labelSet(f.labels, s.labelValues, "")
			switch f.kind {
			case kindCounter:
				out[f.name+ls] = s.c.Value()
			case kindGauge:
				out[f.name+ls] = s.g.Value()
			default:
				out[f.name+"_sum"+ls] = s.h.Sum()
				out[f.name+"_count"+ls] = float64(s.h.Count())
				out[f.name+"_p50"+ls] = s.h.Quantile(0.50)
				out[f.name+"_p95"+ls] = s.h.Quantile(0.95)
				out[f.name+"_p99"+ls] = s.h.Quantile(0.99)
			}
		}
	}
	return out
}

// PublishExpvar mirrors the registry under the given expvar name
// (readable at /debug/vars). Like expvar.Publish, a duplicate name
// panics — publish once per process.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
