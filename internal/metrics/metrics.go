// Package metrics is the repository's observability kernel: atomic
// counters, gauges and fixed-bucket histograms behind a registry that
// exposes everything in the Prometheus text format and mirrors it into
// expvar — with no dependency outside the standard library.
//
// The package exists so the serving layer (internal/serve, cmd/convoyd)
// and the load generator (internal/loadgen, cmd/convoyload) speak one
// measurement language: the server registers and updates instruments, the
// generator scrapes and parses the same exposition (ParseText) to verify
// its own request accounting against the server's.
//
// Instruments are float64-valued (Prometheus semantics) and safe for
// concurrent use; updates are lock-free (CAS on the float bits).
// Registration is not hot-path: register once, update forever. A name
// registered twice panics — that is a programming error, exactly like
// defining a Go variable twice.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated by CAS on its bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if f.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

func (f *atomicFloat) set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// A Counter is a monotonically increasing value (requests served, ticks
// ingested). Decreasing it is a caller bug; the counter does not check.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds v (v must be ≥ 0 for the value to stay a Prometheus counter).
func (c *Counter) Add(v float64) { c.v.add(v) }

// Value returns the current value.
func (c *Counter) Value() float64 { return c.v.value() }

// A Gauge is a value that can go up and down (worker-pool occupancy,
// monitor-table size).
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.set(v) }

// Add adds v (negative to decrease).
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.value() }

// A Histogram counts observations into fixed cumulative-style buckets and
// tracks their sum — enough to expose Prometheus histogram series and to
// estimate quantiles client-side (Quantile). Each bucket additionally
// retains the latest exemplar (ObserveExemplar): one concrete trace ID
// behind the bucket's count, the bridge from "p99 is slow" to "this
// trace is why".
type Histogram struct {
	bounds []float64 // ascending finite upper bounds; +Inf is implicit
	counts []atomic.Int64
	ex     []atomic.Pointer[exemplar]
	sum    atomicFloat
	n      atomic.Int64
}

// exemplar is one sampled observation annotated with its trace ID.
type exemplar struct {
	value   float64
	traceID string
	unix    float64 // seconds since epoch, at observation time
}

// DefLatencyBuckets are upper bounds in seconds that cover sub-millisecond
// cache hits through multi-second discovery runs.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// NewHistogram builds a standalone histogram (not registered anywhere)
// with the given ascending finite upper bounds; nil means
// DefLatencyBuckets. The load generator uses standalone histograms for its
// client-side latency accounting.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
		ex:     make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.sum.add(v)
	h.n.Add(1)
}

// ObserveExemplar records one observation and, when traceID is
// non-empty, stamps the observation's bucket with it as the bucket's
// exemplar (latest wins). Exemplars surface only in the OpenMetrics
// exposition (see Registry.Handler); the plain Prometheus text format is
// unchanged.
func (h *Histogram) ObserveExemplar(v float64, traceID string, unixSeconds float64) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.ex[i].Store(&exemplar{value: v, traceID: traceID, unix: unixSeconds})
}

// exemplarFor returns bucket i's exemplar, or nil.
func (h *Histogram) exemplarFor(i int) *exemplar { return h.ex[i].Load() }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding the target rank — the same estimate a
// Prometheus histogram_quantile would produce. Observations in the +Inf
// bucket clamp to the largest finite bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.n.Load()
	if n == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank || i == len(h.counts)-1 {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // +Inf bucket clamps
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot returns cumulative bucket counts aligned with bounds plus the
// +Inf total.
func (h *Histogram) cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// kind tags a family with its exposition type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instrument of a family.
type series struct {
	labelValues []string
	c           *Counter
	g           *Gauge
	h           *Histogram
}

// family is one named metric with zero or more label dimensions.
type family struct {
	name, help string
	kind       kind
	labels     []string
	buckets    []float64
	fn         func() float64 // kindGaugeFunc only

	mu     sync.Mutex
	series map[string]*series
}

// with returns (creating on first use) the series for the label values.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = NewHistogram(f.buckets)
		}
		f.series[key] = s
	}
	return s
}

// sorted returns the family's series ordered by label values.
func (f *family) sorted() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labelValues, out[j].labelValues
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// A Registry holds named metric families and renders them (WriteProm,
// Handler) or snapshots them (Snapshot, for the expvar mirror).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var nameOK = func(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64, fn func() float64) *family {
	if !nameOK(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameOK(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("metrics: %q registered twice", name))
	}
	f := &family{
		name: name, help: help, kind: k,
		labels:  append([]string(nil), labels...),
		buckets: buckets, fn: fn,
		series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// Counter registers a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil, nil).with(nil).c
}

// Gauge registers a label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil, nil).with(nil).g
}

// GaugeFunc registers a gauge whose value is read at exposition time —
// the natural shape for sizes owned by other structures (feed count,
// cache entries).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGaugeFunc, nil, nil, fn)
}

// Histogram registers a label-less histogram; nil buckets means
// DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, buckets, nil).with(nil).h
}

// A CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil, nil)}
}

// With returns the counter for the label values, creating it on first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values).c }

// A GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil, nil)}
}

// With returns the gauge for the label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.with(values).g }

// A HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family; nil buckets means
// DefLatencyBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labels, buckets, nil)}
}

// With returns the histogram for the label values, creating it on first
// use.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values).h }

// sortedFamilies snapshots the family list, name-sorted.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
