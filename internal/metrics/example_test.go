package metrics_test

import (
	"fmt"
	"net/http/httptest"

	"repro/internal/metrics"
)

// ExampleRegistry_Handler registers a few instruments, serves them over
// HTTP the way cmd/convoyd's -metrics-addr does, and scrapes the
// exposition back with ParseText.
func ExampleRegistry_Handler() {
	reg := metrics.NewRegistry()
	queries := reg.CounterVec("convoyd_queries_total", "Batch queries by outcome.", "outcome")
	latency := reg.Histogram("convoyd_query_seconds", "Query latency.", nil)

	queries.With("ok").Inc()
	queries.With("ok").Inc()
	queries.With("timeout").Inc()
	latency.Observe(0.042)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()

	samples, err := metrics.ParseText(resp.Body)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ok=%g total=%g observations=%g\n",
		samples[`convoyd_queries_total{outcome="ok"}`],
		metrics.Sum(samples, "convoyd_queries_total"),
		samples["convoyd_query_seconds_count"])
	// Output: ok=2 total=3 observations=1
}
