package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/tsio"
)

// errClosed reports an operation on a closed log.
var errClosed = errors.New("wal: log closed")

// manifestName is the creation record's file name inside a log directory.
const manifestName = "MANIFEST"

// manifest is the creation record: the format version and the owner's
// opaque spec (the serving layer stores the feed's creation spec here and
// gets it back verbatim from Open).
type manifest struct {
	Version int             `json:"version"`
	Meta    json.RawMessage `json:"meta,omitempty"`
}

// manifestVersion is the current on-disk format version.
const manifestVersion = 1

// Log is one feed's write-ahead log: a directory of tick segments plus a
// spec journal, owned by exactly one process at a time (the feed worker
// serializes appends; the interval-sync goroutine only ever fsyncs).
type Log struct {
	dir string
	opt Options

	mu     sync.Mutex
	segs   []segmentMeta // ascending index; the last one is active
	active *os.File
	// activeSince is when the active segment was created (age rotation).
	activeSince time.Time
	dirty       bool // unsynced bytes in the active segment
	closed      bool

	lastSync        time.Time
	appendedRecords int64
	appendedBytes   int64
	compacted       int64
	truncatedBytes  int64

	stop     chan struct{}
	syncDone chan struct{}
}

// Exists reports whether dir already holds a log (its manifest).
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Create initialises a fresh log in dir (created if missing), recording
// meta — opaque owner bytes, returned verbatim by Open — in the manifest.
// It fails if dir already holds a log.
func Create(dir string, meta []byte, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if Exists(dir) {
		return nil, fmt.Errorf("wal: %s: log already exists", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	data, err := json.Marshal(manifest{Version: manifestVersion, Meta: meta})
	if err != nil {
		return nil, fmt.Errorf("wal: encode manifest: %w", err)
	}
	// The manifest is written once and must be durable before the feed
	// acknowledges its creation: temp file, fsync, rename, fsync the dir.
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("wal: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt, stop: make(chan struct{}), syncDone: make(chan struct{})}
	if err := l.openSegment(1); err != nil {
		return nil, err
	}
	l.startSyncLoop()
	return l, nil
}

// Open resumes an existing log: the manifest's meta bytes are returned,
// every sealed segment is CRC-verified, a torn tail of the final segment
// is truncated away (its size lands in Status.TruncatedBytes), and the
// final segment is reopened for appending. Corruption anywhere before the
// tail fails the open — the directory is left untouched for inspection.
func Open(dir string, opt Options) (*Log, []byte, error) {
	opt = opt.withDefaults()
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, nil, fmt.Errorf("wal: decode manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, nil, fmt.Errorf("wal: manifest version %d (want %d)", m.Version, manifestVersion)
	}
	indexes, err := segmentIndexes(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opt: opt, stop: make(chan struct{}), syncDone: make(chan struct{})}
	for i, idx := range indexes {
		last := i == len(indexes)-1
		res, err := scanSegment(filepath.Join(dir, segmentName(idx)), idx, last)
		if err != nil {
			return nil, nil, err
		}
		if res.tornBytes > 0 {
			// The crash signature: drop the partial record (and anything
			// after it) so the segment ends on a record boundary again.
			if err := os.Truncate(res.meta.path, res.meta.bytes); err != nil {
				return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			l.truncatedBytes += res.tornBytes
		}
		l.segs = append(l.segs, res.meta)
	}
	if len(l.segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, nil, err
		}
	} else {
		tail := &l.segs[len(l.segs)-1]
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reopen segment: %w", err)
		}
		l.active = f
		l.activeSince = time.Now()
		l.opt.Observer.OnSegments(len(l.segs))
	}
	l.startSyncLoop()
	return l, m.Meta, nil
}

// segmentIndexes lists the segment files in dir, ascending.
func segmentIndexes(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: unexpected segment file %q", name)
		}
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// openSegment creates the segment with the given index and makes it the
// active one (l.mu held, or before the log escapes its constructor).
func (l *Log) openSegment(index uint64) error {
	path := filepath.Join(l.dir, segmentName(index))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(segmentHeader); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.segs = append(l.segs, segmentMeta{index: index, path: path, bytes: int64(len(segmentHeader))})
	l.active = f
	l.activeSince = time.Now()
	l.opt.Observer.OnSegments(1)
	return nil
}

// startSyncLoop arms the interval-fsync goroutine when the policy wants
// one; otherwise the loop's done channel is closed immediately so Close
// never waits on a goroutine that was never started.
func (l *Log) startSyncLoop() {
	if l.opt.Fsync != FsyncInterval {
		close(l.syncDone)
		return
	}
	go func() {
		defer close(l.syncDone)
		t := time.NewTicker(l.opt.FsyncInterval)
		defer t.Stop()
		for {
			select {
			case <-l.stop:
				return
			case <-t.C:
				_ = l.Sync() // best-effort; Append surfaces real write errors
			}
		}
	}()
}

// Append frames and writes one tick block, rotating and compacting first
// when the active segment is full or stale. Under FsyncAlways the record
// is on disk when Append returns; otherwise it is buffered in the OS until
// the next interval sync, rotation or close.
func (l *Log) Append(b tsio.TickBlock) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	payload := tsio.AppendTickBlock(nil, b)
	frame := appendRecord(nil, payload)
	tail := &l.segs[len(l.segs)-1]
	if tail.records > 0 &&
		(tail.bytes+int64(len(frame)) > l.opt.SegmentBytes ||
			(l.opt.SegmentAge > 0 && time.Since(l.activeSince) >= l.opt.SegmentAge)) {
		if err := l.rotate(); err != nil {
			return err
		}
		tail = &l.segs[len(l.segs)-1]
	}
	if _, err := l.active.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	tail.bytes += int64(len(frame))
	tail.records++
	tail.note(b.T)
	l.appendedRecords++
	l.appendedBytes += int64(len(frame))
	l.dirty = true
	l.opt.Observer.OnAppend(1, len(frame))
	if l.opt.Fsync == FsyncAlways {
		return l.syncLocked()
	}
	return nil
}

// rotate seals the active segment and opens the next one (l.mu held). The
// sealed file is fsynced first — except under FsyncNever — so sealed
// segments are durable whole-or-not-at-all; then segments wholly past the
// retention horizon are compacted away.
func (l *Log) rotate() error {
	if l.opt.Fsync != FsyncNever {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	next := l.segs[len(l.segs)-1].index + 1
	if err := l.openSegment(next); err != nil {
		return err
	}
	l.dirty = false
	l.compactLocked()
	return nil
}

// compactLocked drops sealed segments whose newest tick is older than the
// retention horizon (l.mu held). The active segment never compacts.
func (l *Log) compactLocked() {
	if l.opt.RetainTicks <= 0 {
		return
	}
	newest := l.segs[len(l.segs)-1]
	horizon := model.Tick(0)
	hasHorizon := false
	for i := len(l.segs) - 1; i >= 0; i-- {
		if l.segs[i].hasTick {
			horizon = l.segs[i].last - model.Tick(l.opt.RetainTicks)
			hasHorizon = true
			break
		}
	}
	if !hasHorizon {
		return
	}
	kept := l.segs[:0]
	removed := 0
	for _, seg := range l.segs {
		if seg.index != newest.index && seg.hasTick && seg.last < horizon {
			// Best-effort: a segment that refuses to delete stays counted.
			if err := os.Remove(seg.path); err == nil {
				l.compacted++
				removed++
				continue
			}
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	if removed > 0 {
		l.opt.Observer.OnSegments(-removed)
	}
}

// Sync forces buffered appends of the active segment to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty || l.active == nil {
		return nil
	}
	t0 := time.Now()
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.lastSync = time.Now()
	l.opt.Observer.OnFsync(time.Since(t0))
	return nil
}

// Replay streams every retained tick block through fn in append order —
// the recovery path. fn errors abort the replay and are returned.
func (l *Log) Replay(fn func(tsio.TickBlock) error) error {
	return l.ReadRange(0, 0, false, fn)
}

// ReadRange streams the tick blocks with from ≤ t ≤ to through fn in
// append order, touching only segments whose tick range overlaps the
// window. With bounded=false the window is ignored and everything is
// read. Safe to call concurrently with Append: the snapshot taken under
// the lock bounds each segment read to its validated length, and appends
// are visible immediately regardless of the fsync policy (reads go
// through the file system, durability is Sync's concern alone).
func (l *Log) ReadRange(from, to model.Tick, bounded bool, fn func(tsio.TickBlock) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	segs := make([]segmentMeta, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()
	for _, seg := range segs {
		if seg.records == 0 {
			continue
		}
		if bounded && seg.hasTick && (seg.last < from || seg.first > to) {
			continue
		}
		err := readSegment(seg.path, seg.bytes, func(b tsio.TickBlock) error {
			if bounded && (b.T < from || b.T > to) {
				return nil
			}
			return fn(b)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Status snapshots the log's meters.
func (l *Log) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Status{
		Segments:          len(l.segs),
		AppendedRecords:   l.appendedRecords,
		AppendedBytes:     l.appendedBytes,
		CompactedSegments: l.compacted,
		LastSync:          l.lastSync,
		TruncatedBytes:    l.truncatedBytes,
	}
	for _, seg := range l.segs {
		st.Bytes += seg.bytes
		st.Records += seg.records
		if seg.hasTick {
			if !st.HasTicks {
				st.FirstTick, st.LastTick, st.HasTicks = int64(seg.first), int64(seg.last), true
			} else {
				if int64(seg.first) < st.FirstTick {
					st.FirstTick = int64(seg.first)
				}
				if int64(seg.last) > st.LastTick {
					st.LastTick = int64(seg.last)
				}
			}
		}
	}
	return st
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close syncs and closes the active segment and stops the interval-sync
// goroutine. The files stay on disk; Open resumes them. Safe to call
// twice.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	if cerr := l.active.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close segment: %w", cerr)
	}
	l.closed = true
	l.opt.Observer.OnSegments(-len(l.segs))
	close(l.stop)
	l.mu.Unlock()
	<-l.syncDone
	return err
}

// syncDir fsyncs a directory so a just-renamed or just-created entry
// survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
