// Package wal is the durability layer under convoyd's feeds: a per-feed
// append-only log of accepted tick batches (positions and proximity
// edges), written before the batch is applied, so a restarted daemon can
// replay itself back to the exact state of one that never crashed.
//
// One feed owns one directory:
//
//	MANIFEST            creation record: format version + opaque feed spec
//	00000001.wal …      tick segments: CRC-framed CTK tick blocks
//	spec.jnl            spec journal: CRC-framed dynamic-spec operations
//
// Tick segments hold the payload stream — one record per accepted batch,
// each framed as (length, CRC-32C, payload) — and rotate by size and age.
// Segments wholly past a retention horizon are compacted away. The spec
// journal is the tiny, never-compacted side channel for dynamic feed
// specification changes (monitor add/remove, knob flips): entries are
// opaque to this package and always fsynced, so registration survives a
// crash under any tick fsync policy.
//
// Recovery truncates a torn tail — a partially written final record, the
// signature of a crash mid-append — and replays the remaining records in
// order. Damage anywhere before the tail is reported as corruption instead:
// appends are sequential, so a bad record mid-history cannot be a crash
// artifact and must not be silently dropped.
package wal

import (
	"fmt"
	"strings"
	"time"
)

// FsyncPolicy says when appended tick records are forced to stable
// storage. The zero value is FsyncAlways: durability is the default, speed
// is the opt-in.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acknowledged batch is on
	// disk. The slowest and the only policy under which recovery is exact
	// after a power loss, not just a process kill.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a timer (Options.FsyncInterval) and on
	// rotation and close; a crash loses at most the last interval's
	// acknowledged batches.
	FsyncInterval
	// FsyncNever leaves syncing to the OS page cache (still synced once on
	// clean close). Fastest; a crash can lose everything the OS had not
	// written back.
	FsyncNever
)

// String returns the policy's knob spelling (convoyd -wal-fsync).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy resolves a policy name ("" defaults to always).
func ParseFsyncPolicy(name string) (FsyncPolicy, error) {
	switch strings.ToLower(name) {
	case "", "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", name)
	}
}

// Options tunes one feed's log. The zero value is usable: every field has
// a sensible default applied at open.
type Options struct {
	// SegmentBytes rotates the active segment once it would exceed this
	// size (a single oversized record still lands whole in its own
	// segment). Default 4 MiB.
	SegmentBytes int64
	// SegmentAge rotates the active segment once it has been open this
	// long, so retention horizons expressed in wall time keep moving even
	// on slow feeds. 0 disables age rotation.
	SegmentAge time.Duration
	// Fsync is the tick-record durability policy; see FsyncPolicy. The
	// spec journal ignores it and always syncs.
	Fsync FsyncPolicy
	// FsyncInterval is the timer period under FsyncInterval. Default 100ms.
	FsyncInterval time.Duration
	// RetainTicks, when > 0, is the retention horizon: after a rotation,
	// sealed segments whose newest tick is older than lastTick−RetainTicks
	// are deleted. Bounds disk *and* what recovery and historical queries
	// can see — convoys longer than the horizon recover truncated. 0
	// retains everything (the default: recovery is exact).
	RetainTicks int64
	// Observer receives append/fsync/segment meters; nil means none.
	Observer Observer
}

// withDefaults returns the options with zero fields replaced by defaults.
func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.Observer == nil {
		o.Observer = nopObserver{}
	}
	return o
}

// Observer receives the log's meters. Implemented by the serving layer
// over its metrics registry; the wal package itself stays metrics-free.
// Callbacks may arrive from the log's interval-sync goroutine and must be
// safe for concurrent use.
type Observer interface {
	// OnAppend reports one appended record and its framed size in bytes.
	OnAppend(records, bytes int)
	// OnFsync reports one fsync of the active segment and its duration.
	OnFsync(d time.Duration)
	// OnSegments reports segment-count changes of open logs: +n for
	// created or opened segments, −n for compacted ones and for segments
	// released by Close.
	OnSegments(delta int)
}

type nopObserver struct{}

func (nopObserver) OnAppend(int, int)     {}
func (nopObserver) OnFsync(time.Duration) {}
func (nopObserver) OnSegments(int)        {}

// Status is a point-in-time snapshot of one log (GET /v1/feeds/{name}/wal).
type Status struct {
	// Segments, Bytes and Records describe what the log currently holds
	// (compacted segments excluded).
	Segments int
	Bytes    int64
	Records  int64
	// FirstTick and LastTick delimit the retained tick range; HasTicks is
	// false while the log is empty.
	FirstTick, LastTick int64
	HasTicks            bool
	// AppendedRecords and AppendedBytes count appends since this process
	// opened the log.
	AppendedRecords int64
	AppendedBytes   int64
	// CompactedSegments counts segments dropped past the retention horizon
	// since open.
	CompactedSegments int64
	// LastSync is the time of the last fsync of the active segment (zero
	// before the first).
	LastSync time.Time
	// TruncatedBytes is the torn tail dropped when this process opened the
	// log — 0 after a clean shutdown, > 0 when a crash cut a record short.
	TruncatedBytes int64
}
