package wal

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// journalName is the spec journal's file name inside a log directory.
const journalName = "spec.jnl"

// Journal is the spec journal: a tiny append-only side log of dynamic
// feed-specification operations (monitor add/remove, knob flips). Entries
// are opaque, newline-free byte strings supplied by the owner; each line
// is "crc32c-hex space entry newline". Unlike tick segments the journal is
// never compacted — losing a registration to retention would resurrect
// deleted monitors on restart — and every append is fsynced regardless of
// the tick fsync policy: spec changes are rare and must be crash-safe.
type Journal struct {
	path string

	mu     sync.Mutex
	f      *os.File
	closed bool
}

// OpenJournal opens (creating if missing) the spec journal in dir and
// returns the intact entries in append order. A torn final line — the
// crash signature — is truncated away; its size is reported in truncated.
// Damage before the tail is corruption and fails the open.
func OpenJournal(dir string) (j *Journal, entries [][]byte, truncated int64, err error) {
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, 0, fmt.Errorf("wal: read journal: %w", err)
	}
	valid := int64(0)
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn: no newline, the line was cut short
		}
		line := data[off : off+nl]
		entry, ok := parseJournalLine(line)
		if !ok {
			if off+nl+1 < len(data) {
				return nil, nil, 0, fmt.Errorf("wal: journal %s: corrupt entry at offset %d", path, off)
			}
			break // bad final line: torn tail
		}
		entries = append(entries, entry)
		off += nl + 1
		valid = int64(off)
	}
	if valid < int64(len(data)) {
		truncated = int64(len(data)) - valid
		if err := os.Truncate(path, valid); err != nil {
			return nil, nil, 0, fmt.Errorf("wal: truncate journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("wal: open journal: %w", err)
	}
	return &Journal{path: path, f: f}, entries, truncated, nil
}

// parseJournalLine splits "crc32c-hex space entry" and verifies the CRC.
func parseJournalLine(line []byte) ([]byte, bool) {
	if len(line) < 9 || line[8] != ' ' {
		return nil, false
	}
	sum, err := hex.DecodeString(string(line[:8]))
	if err != nil {
		return nil, false
	}
	entry := line[9:]
	want := uint32(sum[0])<<24 | uint32(sum[1])<<16 | uint32(sum[2])<<8 | uint32(sum[3])
	if crc32.Checksum(entry, crcTable) != want {
		return nil, false
	}
	return append([]byte(nil), entry...), true
}

// Append durably writes one entry (fsync included). The entry must not
// contain a newline; JSON-marshaled bytes never do.
func (j *Journal) Append(entry []byte) error {
	if bytes.IndexByte(entry, '\n') >= 0 {
		return fmt.Errorf("wal: journal entry contains a newline")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errClosed
	}
	line := make([]byte, 0, len(entry)+10)
	line = append(line, fmt.Sprintf("%08x ", crc32.Checksum(entry, crcTable))...)
	line = append(line, entry...)
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("wal: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("wal: journal fsync: %w", err)
	}
	return nil
}

// Close closes the journal file; the entries stay on disk. Safe to call
// twice.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("wal: close journal: %w", err)
	}
	return nil
}
