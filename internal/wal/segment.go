package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/model"
	"repro/internal/tsio"
)

// Segment file layout: an 8-byte header ("CWALSEG1") followed by records,
// each framed as
//
//	u32 LE payload length
//	u32 LE CRC-32C (Castagnoli) of the payload
//	payload (one CTK tick block)
//
// The frame is what makes a torn tail detectable: a crash mid-append
// leaves a record whose length outruns the file, or whose CRC disagrees
// with its bytes, and everything from that offset on is discarded by
// recovery. Damage before the tail is corruption, not a crash artifact,
// and fails the scan instead.

var segmentHeader = []byte("CWALSEG1")

const recordHeaderSize = 8

// maxRecordBytes guards length prefixes against corrupted headers before
// any allocation happens (a real record is bounded by the server's request
// body cap, far below this).
const maxRecordBytes = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segmentName formats the file name of the segment with the given index.
func segmentName(index uint64) string { return fmt.Sprintf("%08d.wal", index) }

// appendRecord appends the framed record to dst and returns the extension.
func appendRecord(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// segmentMeta is the in-memory summary of one segment file.
type segmentMeta struct {
	index   uint64
	path    string
	bytes   int64 // valid bytes (header + intact records)
	records int64
	first   model.Tick
	last    model.Tick
	hasTick bool
}

// note folds one record's tick into the segment's range.
func (m *segmentMeta) note(t model.Tick) {
	if !m.hasTick {
		m.first, m.last, m.hasTick = t, t, true
		return
	}
	if t < m.first {
		m.first = t
	}
	if t > m.last {
		m.last = t
	}
}

// scanResult reports what scanSegment found.
type scanResult struct {
	meta segmentMeta
	// tornBytes is the length of the invalid tail (0 for an intact file).
	tornBytes int64
}

// scanSegment validates one segment file: header, then record by record
// until the end or the first damage. With allowTorn (the final segment of
// a log), damage marks the torn tail and the scan reports how many bytes
// to drop; without it (a sealed segment), damage is corruption and an
// error. The whole file is read — the CRCs are only worth their bytes if
// someone checks them.
func scanSegment(path string, index uint64, allowTorn bool) (scanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return scanResult{}, fmt.Errorf("wal: read segment: %w", err)
	}
	res := scanResult{meta: segmentMeta{index: index, path: path}}
	if len(data) < len(segmentHeader) || string(data[:len(segmentHeader)]) != string(segmentHeader) {
		return scanResult{}, fmt.Errorf("wal: segment %s: bad header", path)
	}
	off := int64(len(segmentHeader))
	torn := func(format string, args ...any) (scanResult, error) {
		if !allowTorn {
			return scanResult{}, fmt.Errorf("wal: segment %s: corrupt at offset %d: %s", path, off, fmt.Sprintf(format, args...))
		}
		res.meta.bytes = off
		res.tornBytes = int64(len(data)) - off
		return res, nil
	}
	for off < int64(len(data)) {
		rest := int64(len(data)) - off
		if rest < recordHeaderSize {
			return torn("short record header (%d bytes)", rest)
		}
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordBytes || n > rest-recordHeaderSize {
			return torn("record length %d outruns file", n)
		}
		payload := data[off+recordHeaderSize : off+recordHeaderSize+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return torn("record CRC mismatch")
		}
		blk, derr := tsio.DecodeTickBlock(payload)
		if derr != nil {
			// A CRC-valid but undecodable payload means the bytes were
			// damaged in a way the checksum happens to bless — still not a
			// record this log wrote.
			return torn("record payload: %v", derr)
		}
		res.meta.note(blk.T)
		res.meta.records++
		off += recordHeaderSize + n
	}
	res.meta.bytes = off
	return res, nil
}

// readSegment streams one scanned segment's records through fn in order.
// maxBytes bounds the read to the validated prefix, so a read of the
// active segment never chases bytes appended after the snapshot was taken.
func readSegment(path string, maxBytes int64, fn func(tsio.TickBlock) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: read segment: %w", err)
	}
	if int64(len(data)) > maxBytes {
		data = data[:maxBytes]
	}
	if len(data) < len(segmentHeader) || string(data[:len(segmentHeader)]) != string(segmentHeader) {
		return fmt.Errorf("wal: segment %s: bad header", path)
	}
	off := int64(len(data[:len(segmentHeader)]))
	for off < int64(len(data)) {
		rest := int64(len(data)) - off
		if rest < recordHeaderSize {
			return fmt.Errorf("wal: segment %s: corrupt at offset %d: short record header", path, off)
		}
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordBytes || n > rest-recordHeaderSize {
			return fmt.Errorf("wal: segment %s: corrupt at offset %d: record length %d outruns file", path, off, n)
		}
		payload := data[off+recordHeaderSize : off+recordHeaderSize+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return fmt.Errorf("wal: segment %s: corrupt at offset %d: record CRC mismatch", path, off)
		}
		blk, derr := tsio.DecodeTickBlock(payload)
		if derr != nil {
			return fmt.Errorf("wal: segment %s: corrupt at offset %d: %w", path, off, derr)
		}
		if err := fn(blk); err != nil {
			return err
		}
		off += recordHeaderSize + n
	}
	return nil
}
