package wal_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/tsio"
	"repro/internal/wal"
)

// blk builds a deterministic tick block for tick t: a couple of positions
// and one contact edge, so both payload kinds ride through the codec.
func blk(t int64) tsio.TickBlock {
	return tsio.TickBlock{
		T: model.Tick(t),
		Positions: []tsio.TickPosition{
			{Label: fmt.Sprintf("a%d", t), X: float64(t), Y: -float64(t)},
			{Label: "b", X: 0.5, Y: 1.5},
		},
		Edges: []tsio.TickEdge{{A: "a", B: "b", W: float64(t) + 0.25}},
	}
}

// collect replays the whole log into a slice.
func collect(t *testing.T, l *wal.Log) []tsio.TickBlock {
	t.Helper()
	var out []tsio.TickBlock
	if err := l.Replay(func(b tsio.TickBlock) error {
		out = append(out, b)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want wal.FsyncPolicy
	}{
		{"", wal.FsyncAlways},
		{"always", wal.FsyncAlways},
		{"Interval", wal.FsyncInterval},
		{"never", wal.FsyncNever},
	} {
		got, err := wal.ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" {
			back, err := wal.ParseFsyncPolicy(got.String())
			if err != nil || back != got {
				t.Errorf("round trip %v: got %v, %v", got, back, err)
			}
		}
	}
	if _, err := wal.ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy(sometimes): want error")
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "feed")
	if wal.Exists(dir) {
		t.Fatal("Exists on a fresh dir")
	}
	meta := []byte(`{"name":"fleet"}`)
	l, err := wal.Create(dir, meta, wal.Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if !wal.Exists(dir) {
		t.Error("Exists after Create = false")
	}
	if _, err := wal.Create(dir, meta, wal.Options{}); err == nil {
		t.Error("second Create: want error")
	}
	var want []tsio.TickBlock
	for i := int64(1); i <= 5; i++ {
		b := blk(i)
		if err := l.Append(b); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		want = append(want, b)
	}
	st := l.Status()
	if st.Records != 5 || st.Segments != 1 || !st.HasTicks || st.FirstTick != 1 || st.LastTick != 5 {
		t.Errorf("Status = %+v; want 5 records in 1 segment over ticks [1,5]", st)
	}
	if st.AppendedRecords != 5 || st.AppendedBytes <= 0 {
		t.Errorf("Status appended = %d records / %d bytes", st.AppendedRecords, st.AppendedBytes)
	}
	if st.LastSync.IsZero() {
		t.Error("Status.LastSync zero under FsyncAlways")
	}
	if got := collect(t, l); !reflect.DeepEqual(got, want) {
		t.Errorf("Replay before close: got %d blocks, want %d identical", len(got), len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := l.Append(blk(6)); err == nil {
		t.Error("Append after Close: want error")
	}

	l2, meta2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if string(meta2) != string(meta) {
		t.Errorf("Open meta = %q, want %q", meta2, meta)
	}
	st2 := l2.Status()
	if st2.Records != 5 || st2.TruncatedBytes != 0 {
		t.Errorf("reopened Status = %+v; want 5 records, clean tail", st2)
	}
	if got := collect(t, l2); !reflect.DeepEqual(got, want) {
		t.Errorf("Replay after reopen diverged")
	}
	// The reopened log keeps appending into the tail segment.
	if err := l2.Append(blk(6)); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if got := collect(t, l2); len(got) != 6 || got[5].T != 6 {
		t.Errorf("after reopen+append: %d blocks, tail %v", len(got), got[len(got)-1].T)
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, _, err := wal.Open(filepath.Join(t.TempDir(), "nope"), wal.Options{}); err == nil {
		t.Error("Open on a missing dir: want error")
	}
}

// tailSegment returns the path of the newest segment file in dir.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segment files in %s (%v)", dir, err)
	}
	return matches[len(matches)-1]
}

func TestOpenTruncatesTornTail(t *testing.T) {
	for name, tc := range map[string]struct {
		tear func([]byte) []byte
		keep int64 // intact records surviving recovery
	}{
		// A crash mid-append leaves the final record cut short...
		"cut": {func(data []byte) []byte { return data[:len(data)-3] }, 3},
		// ...or a stub of a frame after the last complete record...
		"garbage": {func(data []byte) []byte { return append(data, 0xde, 0xad, 0xbe) }, 4},
		// ...or a full-length record whose bytes never all hit the disk.
		"crc": {func(data []byte) []byte {
			data[len(data)-1] ^= 0xff
			return data
		}, 3},
	} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "feed")
			l, err := wal.Create(dir, nil, wal.Options{})
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			for i := int64(1); i <= 4; i++ {
				if err := l.Append(blk(i)); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			seg := tailSegment(t, dir)
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatalf("read segment: %v", err)
			}
			if err := os.WriteFile(seg, tc.tear(data), 0o644); err != nil {
				t.Fatalf("tear segment: %v", err)
			}
			l2, _, err := wal.Open(dir, wal.Options{})
			if err != nil {
				t.Fatalf("Open over torn tail: %v", err)
			}
			defer l2.Close()
			st := l2.Status()
			if st.TruncatedBytes == 0 {
				t.Error("Status.TruncatedBytes = 0; want > 0")
			}
			got := collect(t, l2)
			if int64(len(got)) != tc.keep || got[len(got)-1].T != model.Tick(tc.keep) {
				t.Fatalf("replay after torn-tail recovery: %d blocks, want %d ending at tick %d", len(got), tc.keep, tc.keep)
			}
			// The log must be appendable again, ending exactly on a record
			// boundary: recover, append, recover once more.
			if err := l2.Append(blk(9)); err != nil {
				t.Fatalf("Append after recovery: %v", err)
			}
			if err := l2.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			l3, _, err := wal.Open(dir, wal.Options{})
			if err != nil {
				t.Fatalf("second Open: %v", err)
			}
			defer l3.Close()
			if st := l3.Status(); st.Records != tc.keep+1 || st.TruncatedBytes != 0 {
				t.Errorf("after recover+append+reopen: %+v; want %d records, clean tail", st, tc.keep+1)
			}
		})
	}
}

func TestOpenRejectsMidHistoryCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "feed")
	// Tiny segments: every append seals the previous segment.
	l, err := wal.Create(dir, nil, wal.Options{SegmentBytes: 16})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := int64(1); i <= 3; i++ {
		if err := l.Append(blk(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	first := filepath.Join(dir, "00000001.wal")
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatalf("read sealed segment: %v", err)
	}
	data[len(data)/2] ^= 0xff // damage inside a sealed segment's record
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatalf("corrupt segment: %v", err)
	}
	if _, _, err := wal.Open(dir, wal.Options{}); err == nil {
		t.Fatal("Open over a corrupt sealed segment: want error, got nil")
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "feed")
	l, err := wal.Create(dir, nil, wal.Options{SegmentBytes: 16, RetainTicks: 4})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer l.Close()
	for i := int64(1); i <= 20; i++ {
		if err := l.Append(blk(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	st := l.Status()
	if st.CompactedSegments == 0 {
		t.Fatalf("Status = %+v; want compaction with 16-byte segments and RetainTicks=4", st)
	}
	if st.LastTick != 20 {
		t.Errorf("LastTick = %d, want 20", st.LastTick)
	}
	// The horizon is lastTick−RetainTicks = 16; every retained segment's
	// newest record is at or past it, so the oldest retained tick can be at
	// most one whole segment older than the horizon.
	if st.FirstTick <= 10 {
		t.Errorf("FirstTick = %d; want the pre-horizon prefix compacted away", st.FirstTick)
	}
	got := collect(t, l)
	if len(got) == 0 || got[len(got)-1].T != 20 {
		t.Fatalf("replay after compaction: %d blocks", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].T != got[i-1].T+1 {
			t.Errorf("replay gap: tick %d follows %d", got[i].T, got[i-1].T)
		}
	}
	if int64(got[0].T) != st.FirstTick {
		t.Errorf("replay starts at %d, Status.FirstTick = %d", got[0].T, st.FirstTick)
	}
}

func TestReadRangeBounded(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "feed")
	l, err := wal.Create(dir, nil, wal.Options{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer l.Close()
	for i := int64(1); i <= 12; i++ {
		if err := l.Append(blk(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	var got []int64
	err = l.ReadRange(4, 9, true, func(b tsio.TickBlock) error {
		got = append(got, int64(b.T))
		return nil
	})
	if err != nil {
		t.Fatalf("ReadRange: %v", err)
	}
	want := []int64{4, 5, 6, 7, 8, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReadRange(4,9) = %v, want %v", got, want)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, entries, truncated, err := wal.OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if len(entries) != 0 || truncated != 0 {
		t.Fatalf("fresh journal: %d entries, %d truncated", len(entries), truncated)
	}
	want := []string{`{"op":"monitor_add","id":"m1"}`, `{"op":"incremental","on":true}`, `{"op":"monitor_remove","id":"m1"}`}
	for _, e := range want {
		if err := j.Append([]byte(e)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Append([]byte("two\nlines")); err == nil {
		t.Error("Append with a newline: want error")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	j2, entries, truncated, err := wal.OpenJournal(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if truncated != 0 {
		t.Errorf("clean reopen truncated %d bytes", truncated)
	}
	if len(entries) != len(want) {
		t.Fatalf("reopen: %d entries, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		if string(e) != want[i] {
			t.Errorf("entry %d = %q, want %q", i, e, want[i])
		}
	}
}

func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := wal.OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if err := j.Append([]byte("keep")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, "spec.jnl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.WriteString("deadbeef tor"); err != nil { // no newline: torn
		t.Fatalf("tear: %v", err)
	}
	f.Close()
	j2, entries, truncated, err := wal.OpenJournal(dir)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer j2.Close()
	if truncated == 0 {
		t.Error("truncated = 0; want > 0")
	}
	if len(entries) != 1 || string(entries[0]) != "keep" {
		t.Fatalf("entries = %q, want [keep]", entries)
	}
}

func TestJournalRejectsMidHistoryCorruption(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := wal.OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for _, e := range []string{"first", "second"} {
		if err := j.Append([]byte(e)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, "spec.jnl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[10] ^= 0xff // inside the first line, which is not the tail
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	if _, _, _, err := wal.OpenJournal(dir); err == nil {
		t.Fatal("reopen over corrupt first line: want error, got nil")
	}
}

// countingObserver tallies the Observer callbacks (concurrency-safe like
// the contract demands: interval syncs arrive from another goroutine).
type countingObserver struct {
	mu       sync.Mutex
	records  int
	bytes    int
	fsyncs   int
	segments int
}

func (o *countingObserver) OnAppend(records, bytes int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.records += records
	o.bytes += bytes
}

func (o *countingObserver) OnFsync(time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.fsyncs++
}

func (o *countingObserver) OnSegments(delta int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.segments += delta
}

func TestObserverMeters(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "feed")
	obs := &countingObserver{}
	l, err := wal.Create(dir, nil, wal.Options{SegmentBytes: 64, Observer: obs})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := int64(1); i <= 8; i++ {
		if err := l.Append(blk(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := l.Status()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.records != 8 || int64(obs.bytes) != st.AppendedBytes {
		t.Errorf("observer saw %d records / %d bytes; status %d / %d",
			obs.records, obs.bytes, st.AppendedRecords, st.AppendedBytes)
	}
	if obs.fsyncs == 0 {
		t.Error("observer saw no fsyncs under FsyncAlways")
	}
	// Every created segment was matched by Close's release.
	if obs.segments != 0 {
		t.Errorf("net segment delta after Close = %d, want 0", obs.segments)
	}
}

func TestIntervalFsyncLoop(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "feed")
	l, err := wal.Create(dir, nil, wal.Options{Fsync: wal.FsyncInterval, FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := l.Append(blk(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Status().LastSync.IsZero() {
		if time.Now().After(deadline) {
			t.Fatal("interval sync never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// FuzzWALReplay feeds arbitrary bytes in as a log's only segment file and
// demands the open/replay path never panics, never accepts damage silently
// mid-history, and — when it does accept the file — settles into a state a
// second open reproduces exactly (recovery is idempotent).
func FuzzWALReplay(f *testing.F) {
	// Seeds: an intact two-record segment, plus truncations and bit flips
	// at interesting offsets.
	intact := func() []byte {
		dir := filepath.Join(f.TempDir(), "seed")
		l, err := wal.Create(dir, nil, wal.Options{})
		if err != nil {
			f.Fatal(err)
		}
		if err := l.Append(blk(1)); err != nil {
			f.Fatal(err)
		}
		if err := l.Append(blk(2)); err != nil {
			f.Fatal(err)
		}
		if err := l.Close(); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "00000001.wal"))
		if err != nil {
			f.Fatal(err)
		}
		return data
	}()
	f.Add(intact)
	f.Add(intact[:len(intact)-5])
	f.Add(intact[:9])
	f.Add([]byte("CWALSEG1"))
	f.Add([]byte{})
	flipped := append([]byte(nil), intact...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := filepath.Join(t.TempDir(), "feed")
		l, err := wal.Create(dir, nil, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		seg := filepath.Join(dir, "00000001.wal")
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l1, _, err := wal.Open(dir, wal.Options{})
		if err != nil {
			return // rejected: fine, as long as nothing panicked
		}
		var first []tsio.TickBlock
		if err := l1.Replay(func(b tsio.TickBlock) error {
			first = append(first, b)
			return nil
		}); err != nil {
			t.Fatalf("Open accepted the segment but Replay failed: %v", err)
		}
		st := l1.Status()
		if int(st.Records) != len(first) {
			t.Fatalf("Status.Records = %d, replay yielded %d", st.Records, len(first))
		}
		if err := l1.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// Recovery already truncated any torn tail; a second open must agree
		// with the first and truncate nothing further.
		l2, _, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatalf("second Open after recovery: %v", err)
		}
		defer l2.Close()
		if st2 := l2.Status(); st2.TruncatedBytes != 0 || st2.Records != st.Records {
			t.Fatalf("second open: %+v; first settled on %d records", st2, st.Records)
		}
		var second []tsio.TickBlock
		if err := l2.Replay(func(b tsio.TickBlock) error {
			second = append(second, b)
			return nil
		}); err != nil {
			t.Fatalf("second Replay: %v", err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatal("replay diverged between opens")
		}
	})
}
