package expr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/wal"
)

// The wal experiment (not in the paper): what durability costs on the
// ingest path. It drives the same random-walk tick stream into four fresh
// in-process convoyds — one in-memory, one per WAL fsync policy — over
// HTTP, recording tick throughput and per-batch latency. The durable modes
// finish with a restart, so the row also carries the recovery replay time
// of the stream just written. The expected shape: never ≈ interval ≈
// memory (the log write is buffered sequential I/O), always pays an fsync
// per batch and lands an order of magnitude or more below, with the gap
// set by the disk's flush latency.

// walBaseTicks is the stream length at Scale 1; walObjects the random-walk
// population per tick batch.
const (
	walBaseTicks = 2000
	walObjects   = 100
)

// walModes are the compared configurations, in the printed order.
var walModes = []struct {
	name  string
	fsync wal.FsyncPolicy
	wal   bool
}{
	{"memory", 0, false},
	{"wal-never", wal.FsyncNever, true},
	{"wal-interval", wal.FsyncInterval, true},
	{"wal-always", wal.FsyncAlways, true},
}

// Wal prints and records the ingest-throughput comparison.
func Wal(o Options) error {
	w := tab(o)
	fmt.Fprintln(w, "WAL: feed ingest throughput per fsync policy vs in-memory")
	fmt.Fprintln(w, "mode\tticks\tticks/s\tp50 (ms)\tp95 (ms)\twal MiB\trecovery (ms)")
	ticks := int(float64(walBaseTicks) * o.Scale)
	if ticks < 20 {
		ticks = 20
	}
	for _, mode := range walModes {
		res, err := walOne(mode.fsync, mode.wal, ticks, o.Seed)
		if err != nil {
			return fmt.Errorf("expr: Wal %s: %w", mode.name, err)
		}
		rec, mib := "-", "-"
		if mode.wal {
			rec = fmt.Sprintf("%.1f", res.recoveryMS)
			mib = fmt.Sprintf("%.2f", float64(res.walBytes)/(1<<20))
		}
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.2f\t%.2f\t%s\t%s\n",
			mode.name, ticks, res.ticksPerSec, res.p50MS, res.p95MS, mib, rec)
		m := map[string]float64{
			"ticks":          float64(ticks),
			"ticks_per_sec":  res.ticksPerSec,
			"p50_ms":         res.p50MS,
			"p95_ms":         res.p95MS,
			"ingest_ms":      res.ingestMS,
			"closed_convoys": float64(res.closed),
		}
		if mode.wal {
			m["wal_bytes"] = float64(res.walBytes)
			m["recovery_ms"] = res.recoveryMS
			m["replayed_ticks"] = float64(res.replayedTicks)
		}
		o.record(Record{Exp: "wal", Method: mode.name, Metrics: m})
	}
	return w.Flush()
}

// walResult is one mode's measurements.
type walResult struct {
	ticksPerSec   float64
	p50MS, p95MS  float64
	ingestMS      float64
	closed        int
	walBytes      int64
	recoveryMS    float64
	replayedTicks int64
}

// walOne hosts a fresh convoyd, streams the random walk into one feed and
// — in the durable modes — restarts the server to time the recovery.
func walOne(fsync wal.FsyncPolicy, durable bool, ticks int, seed int64) (walResult, error) {
	cfg := serve.Config{Metrics: metrics.NewRegistry()}
	if durable {
		dir, err := os.MkdirTemp("", "convoy-wal-bench")
		if err != nil {
			return walResult{}, err
		}
		defer os.RemoveAll(dir)
		cfg.WALDir = dir
		cfg.WALFsync = fsync
	}
	srv := serve.New(cfg)
	base, stop, err := walHost(srv)
	if err != nil {
		srv.Close()
		return walResult{}, err
	}
	if err := walPost(base+"/v1/feeds", serve.FeedSpec{
		Name: "bench", Params: serve.ParamsJSON{M: 5, K: 50, Eps: 4},
	}, nil); err != nil {
		stop()
		return walResult{}, err
	}

	// The workload: walObjects random walkers, one batch per tick, posted
	// sequentially — the latency of each POST is the client-observed cost
	// of one durable (or not) ingest.
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, walObjects)
	ys := make([]float64, walObjects)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
	}
	lat := make([]float64, 0, ticks)
	var res walResult
	t0 := time.Now()
	for tick := 0; tick < ticks; tick++ {
		batch := serve.TickBatch{T: model.Tick(tick), Positions: make([]serve.Position, walObjects)}
		for i := range xs {
			xs[i] += rng.Float64() - 0.5
			ys[i] += rng.Float64() - 0.5
			batch.Positions[i] = serve.Position{ID: fmt.Sprintf("o%03d", i), X: xs[i], Y: ys[i]}
		}
		var tr serve.TicksResponse
		r0 := time.Now()
		err := walPost(base+"/v1/feeds/bench/ticks", serve.TicksRequest{Ticks: []serve.TickBatch{batch}}, &tr)
		if err != nil {
			stop()
			return walResult{}, err
		}
		lat = append(lat, msf(time.Since(r0)))
		res.closed += len(tr.Closed)
	}
	res.ingestMS = msf(time.Since(t0))
	res.ticksPerSec = float64(ticks) / (res.ingestMS / 1000)
	sort.Float64s(lat)
	res.p50MS = lat[len(lat)/2]
	res.p95MS = lat[len(lat)*95/100]
	if durable {
		var ws serve.WALStatusJSON
		if err := walGet(base+"/v1/feeds/bench/wal", &ws); err != nil {
			stop()
			return walResult{}, err
		}
		res.walBytes = ws.Bytes
	}
	stop()

	if durable {
		// The bill's other side: reopen the directory and replay the stream
		// (fresh registry — instruments register once per registry).
		cfg.Metrics = metrics.NewRegistry()
		srv2 := serve.New(cfg)
		base2, stop2, err := walHost(srv2)
		if err != nil {
			srv2.Close()
			return walResult{}, err
		}
		defer stop2()
		var ws serve.WALStatusJSON
		if err := walGet(base2+"/v1/feeds/bench/wal", &ws); err != nil {
			return walResult{}, err
		}
		if ws.Recovery == nil {
			return walResult{}, fmt.Errorf("restarted server reports no recovery")
		}
		res.recoveryMS = ws.Recovery.DurationMS
		res.replayedTicks = ws.Recovery.ReplayedTicks
	}
	return res, nil
}

// walHost serves an in-process convoyd on a loopback port; stop closes the
// listener and drains the server.
func walHost(srv *serve.Server) (base string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() {
		hs.Close()
		srv.Close()
	}, nil
}

// walPost / walGet are the harness's minimal JSON client.
func walPost(url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	return walDecode(resp, out)
}

func walGet(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return walDecode(resp, out)
}

func walDecode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s: status %d", resp.Request.URL, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
