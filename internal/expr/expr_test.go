package expr

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOptions runs the harness at a very small scale so the whole suite
// stays fast in CI.
func tinyOptions(buf *bytes.Buffer) Options {
	return Options{Scale: 0.004, Seed: 7, Out: buf}
}

func TestTable3Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"Truck", "Cattle", "Car", "Taxi"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table3 output misses %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "convoys") {
		t.Errorf("Table3 header missing:\n%s", out)
	}
}

func TestFigure12RunsAndAgrees(t *testing.T) {
	var buf bytes.Buffer
	// Figure12 internally asserts that every CuTS variant returns the CMC
	// answer; an error here would mean a correctness regression.
	if err := Figure12(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Errorf("Figure12 output:\n%s", buf.String())
	}
}

func TestFigure13Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure13(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"CuTS", "CuTS+", "CuTS*", "simplify", "refine"} {
		if !strings.Contains(buf.String(), m) {
			t.Errorf("Figure13 misses %q:\n%s", m, buf.String())
		}
	}
}

func TestFigure14Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure14(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cand(actual)") {
		t.Errorf("Figure14 output:\n%s", buf.String())
	}
}

func TestFigure15Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure15(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, m := range []string{"DP", "DP+", "DP*", "reduction"} {
		if !strings.Contains(out, m) {
			t.Errorf("Figure15 misses %q:\n%s", m, out)
		}
	}
}

func TestFigure16And17Run(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	if err := Figure16(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Car") || !strings.Contains(buf.String(), "Taxi") {
		t.Errorf("Figure16 output:\n%s", buf.String())
	}
	buf.Reset()
	if err := Figure17(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Truck") || !strings.Contains(buf.String(), "Cattle") {
		t.Errorf("Figure17 output:\n%s", buf.String())
	}
}

func TestFigure19Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure19(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "false pos%") || !strings.Contains(out, "0.4") {
		t.Errorf("Figure19 output:\n%s", out)
	}
}

func TestLookupAndRunAll(t *testing.T) {
	if _, ok := Lookup("fig12"); !ok {
		t.Error("fig12 not found")
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Error("nonsense found")
	}
	if len(Experiments) != 16 {
		t.Errorf("expected 16 experiments, got %d", len(Experiments))
	}
	if _, ok := Lookup("monitors"); !ok {
		t.Error("monitors not found")
	}
	if _, ok := Lookup("cancel"); !ok {
		t.Error("cancel not found")
	}
	if _, ok := Lookup("soak"); !ok {
		t.Error("soak not found")
	}
	if _, ok := Lookup("increment"); !ok {
		t.Error("increment not found")
	}
	if _, ok := Lookup("clusterers"); !ok {
		t.Error("clusterers not found")
	}
	if _, ok := Lookup("wal"); !ok {
		t.Error("wal not found")
	}
	var buf bytes.Buffer
	if err := RunAll(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments {
		_ = e.Desc
	}
	if len(buf.String()) < 500 {
		t.Errorf("RunAll output suspiciously short:\n%s", buf.String())
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{Scale: 0.004, Seed: 1}
	if o.out() == nil {
		t.Error("nil out writer")
	}
	if len(o.profiles()) != 4 {
		t.Error("default profiles missing")
	}
}

// The scaling experiment must sweep workers on both profiles for both
// methods, verify parallel ≡ serial internally, and emit the measurement
// rows BENCH_scaling.json is built from.
func TestScalingRunsAndRecords(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	var recs []Record
	o.Record = func(r Record) { recs = append(recs, r) }
	if err := Scaling(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Scaling:") || !strings.Contains(out, "workers") {
		t.Errorf("Scaling output:\n%s", out)
	}
	sweep := len(workerSweep())
	want := 2 * 2 * sweep // {Truck, Car} × {CMC, CuTS*} × worker sweep
	if len(recs) != want {
		t.Fatalf("records = %d, want %d", len(recs), want)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if r.Exp != "scaling" || r.Param != "workers" || r.Value < 1 {
			t.Errorf("bad record %+v", r)
		}
		if _, ok := r.Metrics["time_ms"]; !ok {
			t.Errorf("record misses time_ms: %+v", r)
		}
		if _, ok := r.Metrics["speedup"]; !ok {
			t.Errorf("record misses speedup: %+v", r)
		}
		seen[r.Dataset+"/"+r.Method] = true
	}
	for _, key := range []string{"Truck/CMC", "Truck/CuTS*", "Car/CMC", "Car/CuTS*"} {
		if !seen[key] {
			t.Errorf("no records for %s", key)
		}
	}
}

// The monitors experiment must sweep the fan-out in both regimes, verify
// the pass counters and the monitor ≡ Streamer answer internally, and emit
// the measurement rows BENCH_monitors.json is built from.
func TestMonitorsRunsAndRecords(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	var recs []Record
	o.Record = func(r Record) { recs = append(recs, r) }
	if err := Monitors(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Monitors:") || !strings.Contains(out, "passes") {
		t.Errorf("Monitors output:\n%s", out)
	}
	want := len(monitorFanout) * 2 // fan-out sweep × {shared, distinct}
	if len(recs) != want {
		t.Fatalf("records = %d, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.Exp != "monitors" || r.Param != "monitors" || r.Value < 1 {
			t.Errorf("bad record %+v", r)
		}
		keys, ticks, passes := r.Metrics["keys"], r.Metrics["ticks"], r.Metrics["passes"]
		if passes != keys*ticks {
			t.Errorf("record %+v: passes = %g, want keys×ticks = %g", r, passes, keys*ticks)
		}
		switch r.Method {
		case "shared":
			if keys != 1 {
				t.Errorf("shared regime with %g keys: %+v", keys, r)
			}
		case "distinct":
			if keys != r.Value {
				t.Errorf("distinct regime with %g keys over %g monitors: %+v", keys, r.Value, r)
			}
		default:
			t.Errorf("unknown regime %q", r.Method)
		}
	}
}

// Worker counts must not change any experiment's answers: Figure 12 runs
// its own cross-algorithm equality check internally, so running it with a
// parallel option set doubles as an end-to-end equivalence test.
func TestFigure12ParallelWorkers(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Workers = 4
	if err := Figure12(o); err != nil {
		t.Fatal(err)
	}
}

func TestCancelRecordsRows(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	var recs []Record
	o.Record = func(r Record) { recs = append(recs, r) }
	if err := Cancel(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Cancel: time-to-abort") {
		t.Errorf("Cancel output:\n%s", buf.String())
	}
	// 2 profiles × 2 methods × (1 full + 3 cancel points) = 16 rows.
	if len(recs) != 16 {
		t.Fatalf("recorded %d rows, want 16", len(recs))
	}
	for _, r := range recs {
		if r.Exp != "cancel" || r.Param != "cancel_frac" {
			t.Fatalf("bad record %+v", r)
		}
		if r.Metrics["passes_full"] <= 0 {
			t.Fatalf("record without full pass count: %+v", r)
		}
		if r.Metrics["passes"] > r.Metrics["passes_full"] {
			t.Fatalf("cancelled run did more work than the full run: %+v", r)
		}
	}
}

// The clusterers experiment must run both backends over the Contact
// profile, prove the m=2 answers agree label-for-label (it errors out
// otherwise), and emit one measurement row per backend.
func TestClusterersRunsAndRecords(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	var recs []Record
	o.Record = func(r Record) { recs = append(recs, r) }
	if err := Clusterers(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Clusterers:") || !strings.Contains(out, "passes") {
		t.Errorf("Clusterers output:\n%s", out)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (one per backend)", len(recs))
	}
	byMethod := map[string]Record{}
	for _, r := range recs {
		if r.Exp != "clusterers" || r.Dataset != "Contact" {
			t.Errorf("bad record %+v", r)
		}
		for _, m := range []string{"time_ms", "convoys", "passes"} {
			if _, ok := r.Metrics[m]; !ok {
				t.Errorf("record misses %s: %+v", m, r)
			}
		}
		byMethod[r.Method] = r
	}
	d, g := byMethod["dbscan"], byMethod["proxgraph"]
	if d.Method == "" || g.Method == "" {
		t.Fatalf("missing a backend row: %+v", recs)
	}
	if d.Metrics["convoys"] != g.Metrics["convoys"] {
		t.Errorf("convoy counts differ: dbscan %v vs proxgraph %v",
			d.Metrics["convoys"], g.Metrics["convoys"])
	}
	if d.Metrics["passes"] <= 0 || g.Metrics["passes"] <= 0 {
		t.Errorf("pass counters not recorded: dbscan %v, proxgraph %v",
			d.Metrics["passes"], g.Metrics["passes"])
	}
}
