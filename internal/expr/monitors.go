package expr

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/model"
)

// The monitors experiment (not in the paper): wall-clock time and
// clustering passes of the multi-monitor streaming engine as the monitor
// fan-out grows. It replays the Truck profile through N ∈ {1, 4, 16, 64}
// standing queries in two regimes — "shared", where every monitor has the
// same clustering key (e, m) and only the lifetime k varies, and
// "distinct", where every monitor has its own e — and records one
// measurement row per (monitors, regime). Shared keys should show flat
// clustering cost (one DBSCAN pass per tick regardless of N); distinct
// keys pay one pass per key and bound the worst case. Each run checks the
// pass counters and spot-checks one monitor against a standalone Streamer.
// benchrunner -json turns the rows into BENCH_monitors.json, the file the
// CI smoke run and the README point at.

// monitorFanout is the swept monitor counts.
var monitorFanout = []int{1, 4, 16, 64}

// monitorParams builds the N parameter sets of one regime. Shared: one
// clustering key, k varies. Distinct: every monitor its own e (distinct
// keys), same k.
func monitorParams(p core.Params, n int, regime string) []core.Params {
	out := make([]core.Params, n)
	for i := range out {
		out[i] = p
		if regime == "shared" {
			out[i].K = p.K + int64(i%8)
		} else {
			out[i].Eps = p.Eps * (1 + 0.05*float64(i))
		}
	}
	return out
}

// monitorsProfile picks the Truck profile out of the option set.
func monitorsProfile(o Options) datagen.Profile {
	for _, prof := range o.profiles() {
		if prof.Name == "Truck" {
			return prof
		}
	}
	return datagen.Truck(o.Scale, o.Seed)
}

// Monitors prints and records the monitor fan-out sweep.
func Monitors(o Options) error {
	prof := monitorsProfile(o)
	db := prof.Generate()
	base := params(prof)
	w := tab(o)
	fmt.Fprintln(w, "Monitors: streaming cost vs standing-query fan-out (one feed)")
	fmt.Fprintln(w, "dataset\tregime\tmonitors\tkeys\tpasses\ttime (ms)")
	for _, n := range monitorFanout {
		for _, regime := range []string{"shared", "distinct"} {
			paramSets := monitorParams(base, n, regime)

			sources := make(map[core.ClusterKey]*core.ClusterSource)
			monitors := make([]*core.Monitor, n)
			for i, p := range paramSets {
				key := p.ClusterKey()
				if _, ok := sources[key]; !ok {
					src, err := core.NewClusterSource(key)
					if err != nil {
						return fmt.Errorf("expr: Monitors %s n=%d: %w", regime, n, err)
					}
					sources[key] = src
				}
				mon, err := core.NewMonitor(p)
				if err != nil {
					return fmt.Errorf("expr: Monitors %s n=%d: %w", regime, n, err)
				}
				monitors[i] = mon
			}

			var firstEmitted []core.Convoy
			ticks := int64(0)
			t0 := time.Now()
			err := core.ReplayTicks(db, func(t model.Tick, ids []model.ObjectID, pts []geom.Point) error {
				ticks++
				clusters := make(map[core.ClusterKey][][]model.ObjectID, len(sources))
				for key, src := range sources {
					clusters[key] = src.Snapshot(ids, pts)
				}
				for i, mon := range monitors {
					got, err := mon.AdvanceClusters(t, clusters[paramSets[i].ClusterKey()])
					if err != nil {
						return err
					}
					if i == 0 {
						firstEmitted = append(firstEmitted, got...)
					}
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("expr: Monitors %s n=%d: %w", regime, n, err)
			}
			for i, mon := range monitors {
				closed := mon.Close()
				if i == 0 {
					firstEmitted = append(firstEmitted, closed...)
				}
			}
			elapsed := time.Since(t0)

			passes := int64(0)
			for _, src := range sources {
				passes += src.Passes()
			}
			if want := ticks * int64(len(sources)); passes != want {
				return fmt.Errorf("expr: Monitors %s n=%d: %d passes over %d ticks × %d keys (want %d)",
					regime, n, passes, ticks, len(sources), want)
			}
			// Spot-check: the first monitor's canonicalized emissions equal
			// a standalone Streamer's (and thus the batch CMC answer).
			want, err := core.StreamDB(db, paramSets[0])
			if err != nil {
				return fmt.Errorf("expr: Monitors %s n=%d: %w", regime, n, err)
			}
			if !core.Canonicalize(firstEmitted).Equal(want) {
				return fmt.Errorf("expr: Monitors %s n=%d: monitor answer differs from standalone Streamer", regime, n)
			}

			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%s\n",
				prof.Name, regime, n, len(sources), passes, ms(elapsed))
			o.record(Record{Exp: "monitors", Dataset: prof.Name, Method: regime,
				Param: "monitors", Value: float64(n),
				Metrics: map[string]float64{
					"keys":    float64(len(sources)),
					"passes":  float64(passes),
					"ticks":   float64(ticks),
					"time_ms": msf(elapsed),
				}})
		}
	}
	return w.Flush()
}
