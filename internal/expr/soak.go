package expr

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/serve"
)

// The soak experiment (not in the paper): sustained HTTP load against the
// serving layer itself. For every loadgen scenario preset it hosts a
// fresh in-process convoyd (serve.New with its /metrics registry) on a
// loopback listener and drives it with the closed-loop generator for
// Scale × 10 seconds, recording client-observed p50/p95/p99 latency and
// throughput per scenario (and per operation) plus the server's own
// meters — the shape every scaling PR is judged against.
//
// benchrunner -json turns the rows into BENCH_soak.json; CI smokes the
// experiment at -scale 0.01 and the nightly workflow runs the full-scale
// pass and uploads the file as an artifact.

// soakBaseDuration is the per-scenario load window at Scale 1.
const soakBaseDuration = 10 * time.Second

// Soak prints and records the load sweep over every scenario preset.
func Soak(o Options) error {
	w := tab(o)
	fmt.Fprintln(w, "Soak: load-generator scenarios against an in-process convoyd")
	fmt.Fprintln(w, "scenario\treqs\terrs\trps\tp50 (ms)\tp95 (ms)\tp99 (ms)\taccounting")
	dur := time.Duration(o.Scale * float64(soakBaseDuration))
	if dur < 100*time.Millisecond {
		dur = 100 * time.Millisecond
	}
	workers := o.Workers
	if workers < 2 {
		workers = 2
	}
	for _, name := range loadgen.ScenarioNames() {
		rep, err := soakOne(name, dur, workers, o)
		if err != nil {
			return fmt.Errorf("expr: Soak %s: %w", name, err)
		}
		match := "match"
		matchVal := 1.0
		if !rep.ServerMatch {
			match = "MISMATCH"
			matchVal = 0
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.2f\t%.2f\t%.2f\t%s\n",
			name, rep.Requests, rep.Errors, rep.ThroughputRPS, rep.P50MS, rep.P95MS, rep.P99MS, match)
		o.record(Record{Exp: "soak", Dataset: name, Metrics: map[string]float64{
			"requests":       float64(rep.Requests),
			"errors":         float64(rep.Errors),
			"throughput_rps": rep.ThroughputRPS,
			"mean_ms":        rep.MeanMS,
			"p50_ms":         rep.P50MS,
			"p95_ms":         rep.P95MS,
			"p99_ms":         rep.P99MS,
			"server_match":   matchVal,
			"cluster_passes_saved": rep.Server["convoyd_feed_cluster_passes_naive_total"] -
				rep.Server["convoyd_feed_cluster_passes_total"],
		}})
		for _, op := range rep.Ops {
			o.record(Record{Exp: "soak", Dataset: name, Method: op.Op, Metrics: map[string]float64{
				"requests": float64(op.Requests),
				"mean_ms":  op.MeanMS,
				"p50_ms":   op.P50MS,
				"p95_ms":   op.P95MS,
				"p99_ms":   op.P99MS,
			}})
		}
	}
	return w.Flush()
}

// soakOne hosts one fresh server (API plus /metrics, the cmd/convoyd
// layout) on a loopback port and runs one scenario against it.
func soakOne(name string, dur time.Duration, workers int, o Options) (loadgen.Report, error) {
	reg := metrics.NewRegistry()
	srv := serve.New(serve.Config{Metrics: reg})
	defer srv.Close()
	mux := http.NewServeMux()
	mux.Handle("/v1/", srv)
	mux.Handle("GET /metrics", reg.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadgen.Report{}, err
	}
	hs := &http.Server{Handler: mux}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	return loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:     "http://" + ln.Addr().String(),
		Scenario:    name,
		Duration:    dur,
		Concurrency: workers,
		Seed:        o.Seed,
		Scale:       o.Scale,
	})
}
