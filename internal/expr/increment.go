package expr

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/model"
)

// The increment experiment (not in the paper): the incremental clustering
// fast path against from-scratch per-tick DBSCAN over the churn spectrum.
// The Commute profile sweeps the per-tick move probability from near-frozen
// to every-object-every-tick on an otherwise identical world, and Contact
// supplies a naturally mobile crowd. Every run asserts the two modes name
// the same convoys — the fast path is a pure work optimization — and
// records end-to-end wall time, a clustering-only loop time, the full /
// incremental pass split and the objects actually re-clustered.

// incrementWorld is one benchmarked database: a profile plus the churn
// label it represents.
type incrementWorld struct {
	prof  datagen.Profile
	churn float64 // -1 = the profile's natural movement (Contact)
}

// clusterOnlyLoop times a bare ClusterSource pass over every tick of the
// database — the clustering cost with no convoy chaining on top, which is
// the work the incremental engine actually saves.
func clusterOnlyLoop(db *model.DB, p core.Params, incremental bool) (time.Duration, error) {
	src, err := core.NewClusterSource(core.ClusterKey{Eps: p.Eps, M: p.M})
	if err != nil {
		return 0, err
	}
	if !incremental {
		src.SetIncremental(0)
	}
	lo, hi, ok := db.TimeRange()
	if !ok {
		return 0, fmt.Errorf("empty database")
	}
	t0 := time.Now()
	for t := lo; t <= hi; t++ {
		ids, pts := db.SnapshotAt(t)
		src.Snapshot(ids, pts)
	}
	return time.Since(t0), nil
}

// Increment prints and records the incremental-vs-from-scratch comparison.
func Increment(o Options) error {
	w := tab(o)
	fmt.Fprintln(w, "Increment: incremental vs from-scratch per-tick clustering (CMC)")
	fmt.Fprintln(w, "dataset\tchurn\tmode\ttime (ms)\tcluster (ms)\tpasses full/inc\treclustered\tspeedup\tcluster speedup")

	worlds := []incrementWorld{
		{datagen.CommuteChurn(o.Scale, o.Seed, 0.01), 0.01},
		{datagen.CommuteChurn(o.Scale, o.Seed, 0.1), 0.1},
		{datagen.CommuteChurn(o.Scale, o.Seed, 0.5), 0.5},
		{datagen.CommuteChurn(o.Scale, o.Seed, 1.0), 1.0},
		{datagen.Contact(o.Scale, o.Seed), -1},
	}
	ctx := context.Background()

	for _, world := range worlds {
		prof := world.prof
		db := prof.Generate()
		p := params(prof)
		churnLabel := "natural"
		if world.churn >= 0 {
			churnLabel = fmt.Sprintf("%g%%", world.churn*100)
		}

		run := func(opts ...core.Option) (core.Result, core.Stats, time.Duration, error) {
			var st core.Stats
			opts = append(opts, core.WithParams(p), core.WithCMC(), core.WithStats(&st))
			t0 := time.Now()
			res, err := core.NewQuery(opts...).Run(ctx, db)
			return res, st, time.Since(t0), err
		}
		ires, ist, iElapsed, err := run()
		if err != nil {
			return fmt.Errorf("expr: Increment %s churn %s incremental: %w", prof.Name, churnLabel, err)
		}
		fres, fst, fElapsed, err := run(core.WithIncremental(-1))
		if err != nil {
			return fmt.Errorf("expr: Increment %s churn %s from-scratch: %w", prof.Name, churnLabel, err)
		}

		// The fast path may only change how the answer is computed, never
		// the answer. Compare up to ordering via the canonical relabeling.
		label := func(id model.ObjectID) string {
			if s := db.Traj(id).Label; s != "" {
				return s
			}
			return fmt.Sprintf("o%d", id)
		}
		if !sameConvoys(relabel(ires, label), relabel(fres, label)) {
			return fmt.Errorf("expr: Increment %s churn %s: incremental found %d convoy(s), from-scratch %d, and they disagree",
				prof.Name, churnLabel, len(ires), len(fres))
		}

		iCluster, err := clusterOnlyLoop(db, p, true)
		if err != nil {
			return fmt.Errorf("expr: Increment %s churn %s: %w", prof.Name, churnLabel, err)
		}
		fCluster, err := clusterOnlyLoop(db, p, false)
		if err != nil {
			return fmt.Errorf("expr: Increment %s churn %s: %w", prof.Name, churnLabel, err)
		}
		speedup := float64(fElapsed) / float64(iElapsed)
		clusterSpeedup := float64(fCluster) / float64(iCluster)

		for _, row := range []struct {
			mode           string
			elapsed        time.Duration
			cluster        time.Duration
			st             core.Stats
			n              int
			speedup        float64
			clusterSpeedup float64
		}{
			{"incremental", iElapsed, iCluster, ist, len(ires), speedup, clusterSpeedup},
			{"full", fElapsed, fCluster, fst, len(fres), 1, 1},
		} {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%d/%d\t%d\t%.1fx\t%.1fx\n",
				prof.Name, churnLabel, row.mode, ms(row.elapsed), ms(row.cluster),
				row.st.ClusterPassesFull, row.st.ClusterPassesIncremental,
				row.st.ObjectsReclustered, row.speedup, row.clusterSpeedup)
			o.record(Record{Exp: "increment", Dataset: prof.Name, Method: row.mode,
				Param: "churn", Value: world.churn,
				Metrics: map[string]float64{
					"time_ms":             msf(row.elapsed),
					"cluster_ms":          msf(row.cluster),
					"convoys":             float64(row.n),
					"passes_full":         float64(row.st.ClusterPassesFull),
					"passes_incremental":  float64(row.st.ClusterPassesIncremental),
					"objects_reclustered": float64(row.st.ObjectsReclustered),
					"speedup":             row.speedup,
					"cluster_speedup":     row.clusterSpeedup,
				}})
		}
	}
	return w.Flush()
}
