package expr

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
)

// The scaling experiment (not in the paper): wall-clock time of the
// parallel discovery pipeline as the per-stage worker count grows. It
// sweeps workers ∈ {1, 2, 4, NumCPU} over the Truck and Car profiles for
// both CMC (per-tick clustering pipeline) and CuTS* (parallel simplify +
// filter + refine), checks every answer against the workers=1 run, and
// records one measurement row per (dataset, method, workers) — benchrunner
// -json turns those into BENCH_scaling.json, the file the CI smoke run and
// the README point at.

// workerSweep returns {1, 2, 4, NumCPU}, deduplicated and ascending. On
// machines with fewer than 4 cores the 2- and 4-worker points still run —
// the equality check matters everywhere, and the wall-clock curve simply
// flattens where the hardware runs out.
func workerSweep() []int {
	out := []int{1, 2, 4}
	ncpu := runtime.NumCPU()
	if ncpu > 4 {
		out = append(out, ncpu)
	}
	return out
}

// scalingProfiles picks the Truck and Car profiles out of the option set.
func scalingProfiles(o Options) []datagen.Profile {
	var out []datagen.Profile
	for _, prof := range o.profiles() {
		if prof.Name == "Truck" || prof.Name == "Car" {
			out = append(out, prof)
		}
	}
	if len(out) == 0 {
		out = []datagen.Profile{datagen.Truck(o.Scale, o.Seed), datagen.Car(o.Scale, o.Seed)}
	}
	return out
}

// Scaling prints and records the worker-count sweep.
func Scaling(o Options) error {
	w := tab(o)
	fmt.Fprintln(w, "Scaling: discovery wall-clock vs worker count")
	fmt.Fprintln(w, "dataset\tmethod\tworkers\ttime (ms)\tspeedup")
	for _, prof := range scalingProfiles(o) {
		db := prof.Generate()
		p := params(prof)
		for _, method := range []string{"CMC", "CuTS*"} {
			var ref core.Result
			var base time.Duration
			for _, workers := range workerSweep() {
				var (
					res     core.Result
					elapsed time.Duration
					st      core.Stats
					err     error
				)
				t0 := time.Now()
				if method == "CMC" {
					res, err = core.CMCParallel(db, p, workers)
					elapsed = time.Since(t0)
				} else {
					res, st, err = core.Run(db, p, core.Config{Variant: core.VariantCuTSStar, Workers: workers})
					elapsed = time.Since(t0)
				}
				if err != nil {
					return fmt.Errorf("expr: Scaling %s %s workers=%d: %w", prof.Name, method, workers, err)
				}
				if workers == 1 {
					ref, base = res, elapsed
				} else if !res.Equal(ref) {
					return fmt.Errorf("expr: Scaling %s %s: workers=%d answer differs from serial", prof.Name, method, workers)
				}
				speedup := 1.0
				if elapsed > 0 {
					speedup = float64(base) / float64(elapsed)
				}
				fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%.2fx\n", prof.Name, method, workers, ms(elapsed), speedup)
				metrics := map[string]float64{
					"time_ms": msf(elapsed),
					"speedup": speedup,
				}
				if method != "CMC" {
					metrics["simplify_ms"] = msf(st.SimplifyTime)
					metrics["filter_ms"] = msf(st.FilterTime)
					metrics["refine_ms"] = msf(st.RefineTime)
				}
				o.record(Record{Exp: "scaling", Dataset: prof.Name, Method: method,
					Param: "workers", Value: float64(workers), Metrics: metrics})
			}
		}
	}
	return w.Flush()
}
