package expr

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
)

// The cancel experiment (not in the paper): how quickly an in-flight
// discovery run honors cancellation, and how much clustering work the
// abort saves. For each profile and method the full run is measured first
// (wall time and Stats.ClusterPasses), then repeated with a deadline at
// 25%, 50% and 75% of the full wall time. Two metrics matter:
//
//   - abort_ms — how long past its deadline the run kept working before
//     returning ctx.Err(); the context-first pipeline bounds this by
//     roughly one clustering pass per worker.
//   - passes / passes_full — the work actually done versus the full run;
//     the gap is what a disconnected client no longer burns.
//
// benchrunner -json turns the rows into BENCH_cancel.json; the CI smoke
// additionally asserts the file appears and parses.

// cancelFracs are the deadline positions, as fractions of the full run.
var cancelFracs = []float64{0.25, 0.5, 0.75}

// cancelProfiles mirrors the scaling experiment's Truck and Car choice.
func cancelProfiles(o Options) []datagen.Profile {
	var out []datagen.Profile
	for _, prof := range o.profiles() {
		if prof.Name == "Truck" || prof.Name == "Car" {
			out = append(out, prof)
		}
	}
	if len(out) == 0 {
		out = []datagen.Profile{datagen.Truck(o.Scale, o.Seed), datagen.Car(o.Scale, o.Seed)}
	}
	return out
}

// cancelQuery builds the query for one method at the experiment's worker
// count.
func cancelQuery(method string, p core.Params, workers int, st *core.Stats) *core.Query {
	opts := []core.Option{core.WithParams(p), core.WithWorkers(workers), core.WithStats(st)}
	if method == "CMC" {
		opts = append(opts, core.WithCMC())
	} else {
		opts = append(opts, core.WithVariant(core.VariantCuTSStar))
	}
	return core.NewQuery(opts...)
}

// Cancel prints and records the cancellation sweep.
func Cancel(o Options) error {
	w := tab(o)
	fmt.Fprintln(w, "Cancel: time-to-abort and wasted work vs cancel point")
	fmt.Fprintln(w, "dataset\tmethod\tcancel@\tfull (ms)\telapsed (ms)\tabort (ms)\tpasses\tof full\tfinished")
	workers := o.Workers
	if workers < 1 {
		workers = 1
	}
	for _, prof := range cancelProfiles(o) {
		db := prof.Generate()
		p := params(prof)
		for _, method := range []string{"CMC", "CuTS*"} {
			var fullStats core.Stats
			t0 := time.Now()
			if _, err := cancelQuery(method, p, workers, &fullStats).Run(context.Background(), db); err != nil {
				return fmt.Errorf("expr: Cancel %s %s full run: %w", prof.Name, method, err)
			}
			fullTime := time.Since(t0)
			o.record(Record{Exp: "cancel", Dataset: prof.Name, Method: method,
				Param: "cancel_frac", Value: 1,
				Metrics: map[string]float64{
					"time_ms":     msf(fullTime),
					"passes":      float64(fullStats.ClusterPasses),
					"passes_full": float64(fullStats.ClusterPasses),
					"finished":    1,
				}})
			fmt.Fprintf(w, "%s\t%s\t—\t%s\t%s\t—\t%d\t100%%\tyes\n",
				prof.Name, method, ms(fullTime), ms(fullTime), fullStats.ClusterPasses)

			for _, frac := range cancelFracs {
				deadline := time.Duration(frac * float64(fullTime))
				ctx, cancel := context.WithTimeout(context.Background(), deadline)
				var st core.Stats
				t1 := time.Now()
				_, err := cancelQuery(method, p, workers, &st).Run(ctx, db)
				elapsed := time.Since(t1)
				cancel()
				finished := err == nil // the run can beat a late deadline
				if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					// A genuine failure, not the planned abort.
					return fmt.Errorf("expr: Cancel %s %s frac=%.2f: %w", prof.Name, method, frac, err)
				}
				abort := elapsed - deadline
				if abort < 0 || finished {
					abort = 0
				}
				share := 0.0
				if fullStats.ClusterPasses > 0 {
					share = float64(st.ClusterPasses) / float64(fullStats.ClusterPasses)
				}
				yn := "no"
				if finished {
					yn = "yes"
				}
				fmt.Fprintf(w, "%s\t%s\t%.0f%%\t%s\t%s\t%s\t%d\t%.0f%%\t%s\n",
					prof.Name, method, frac*100, ms(fullTime), ms(elapsed), ms(abort), st.ClusterPasses, share*100, yn)
				metrics := map[string]float64{
					"time_ms":     msf(elapsed),
					"abort_ms":    msf(abort),
					"passes":      float64(st.ClusterPasses),
					"passes_full": float64(fullStats.ClusterPasses),
					"finished":    0,
				}
				if finished {
					metrics["finished"] = 1
				}
				o.record(Record{Exp: "cancel", Dataset: prof.Name, Method: method,
					Param: "cancel_frac", Value: frac, Metrics: metrics})
			}
		}
	}
	return w.Flush()
}
