package expr

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func scalingRecord(dataset, method string, workers, speedup float64) Record {
	return Record{
		Exp: "scaling", Dataset: dataset, Method: method,
		Param: "workers", Value: workers,
		Metrics: map[string]float64{"speedup": speedup, "time_ms": 10 / speedup},
	}
}

func TestCompareScaling(t *testing.T) {
	baseline := BenchFile{Exp: "scaling", Records: []Record{
		scalingRecord("Truck", "CMC", 1, 1),
		scalingRecord("Truck", "CMC", 2, 1.8),
		scalingRecord("Truck", "CMC", 4, 3.0),
		scalingRecord("Truck", "CMC", 16, 6.0), // CI runner has no 16-core point
	}}
	candidate := BenchFile{Exp: "scaling", Records: []Record{
		scalingRecord("Truck", "CMC", 1, 1),
		scalingRecord("Truck", "CMC", 2, 1.7),  // within 25% of 1.8
		scalingRecord("Truck", "CMC", 4, 2.0),  // 33% below 3.0 → regression
		scalingRecord("Truck", "CMC", 8, 3.5),  // no baseline → ignored
		scalingRecord("Car", "CuTS*", 2, 0.01), // no baseline → ignored
	}}

	regs := CompareScaling(baseline, candidate, 0.25)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly the workers=4 point", regs)
	}
	if regs[0].Key != "Truck/CMC/workers=4" || regs[0].Candidate != 2.0 {
		t.Errorf("regression = %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "speedup") {
		t.Errorf("String() = %q", regs[0].String())
	}

	// A looser tolerance absorbs the same gap.
	if regs := CompareScaling(baseline, candidate, 0.5); len(regs) != 0 {
		t.Errorf("tol=0.5 regressions = %v, want none", regs)
	}
}

func TestReadBenchFile(t *testing.T) {
	bf := BenchFile{Exp: "scaling", Scale: 0.3, Seed: 1, Records: []Record{
		scalingRecord("Truck", "CMC", 2, 1.5),
	}}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_scaling.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Exp != "scaling" || len(got.Records) != 1 || got.Records[0].Metrics["speedup"] != 1.5 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := ReadBenchFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchFile(bad); err == nil {
		t.Error("malformed file did not error")
	}
}

// TestSoakSmoke runs the soak experiment at a tiny scale end to end and
// checks the recorded rows carry the percentile metrics and that every
// scenario's request accounting matched the server's.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak spins real HTTP servers")
	}
	var records []Record
	o := Options{Scale: 0.004, Seed: 7, Workers: 2,
		Record: func(r Record) { records = append(records, r) }}
	var sb strings.Builder
	o.Out = &sb
	if err := Soak(o); err != nil {
		t.Fatal(err)
	}
	perScenario := 0
	for _, r := range records {
		if r.Exp != "soak" {
			t.Fatalf("record exp = %q", r.Exp)
		}
		if r.Method != "" {
			continue // per-op row
		}
		perScenario++
		if r.Metrics["requests"] <= 0 {
			t.Errorf("%s: no requests", r.Dataset)
		}
		if r.Metrics["server_match"] != 1 {
			t.Errorf("%s: request accounting mismatched", r.Dataset)
		}
		for _, m := range []string{"p50_ms", "p95_ms", "p99_ms", "throughput_rps"} {
			if r.Metrics[m] <= 0 {
				t.Errorf("%s: metric %s = %g, want > 0", r.Dataset, m, r.Metrics[m])
			}
		}
	}
	if perScenario != 5 {
		t.Errorf("scenario rows = %d, want 5", perScenario)
	}
	if !strings.Contains(sb.String(), "Soak:") {
		t.Errorf("table output missing header:\n%s", sb.String())
	}
}
