package expr

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchFile is the schema of the BENCH_<exp>.json measurement files
// benchrunner writes — exported so the regression checker (benchrunner
// -check-regression, run by CI) and external tooling can read them back.
type BenchFile struct {
	Exp     string   `json:"exp"`
	Scale   float64  `json:"scale"`
	Seed    int64    `json:"seed"`
	Workers int      `json:"workers,omitempty"`
	Records []Record `json:"records"`
}

// ReadBenchFile loads one measurement file.
func ReadBenchFile(path string) (BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchFile{}, err
	}
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return BenchFile{}, fmt.Errorf("expr: parse %s: %w", path, err)
	}
	return bf, nil
}

// A Regression is one key ratio that degraded beyond tolerance.
type Regression struct {
	Key       string  // dataset/method/param=value
	Metric    string  // the compared metric
	Baseline  float64 // committed value
	Candidate float64 // freshly measured value
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.3f → %.3f", r.Key, r.Metric, r.Baseline, r.Candidate)
}

// recordKey identifies a measurement row across runs.
func recordKey(r Record) string {
	return fmt.Sprintf("%s/%s/%s=%g", r.Dataset, r.Method, r.Param, r.Value)
}

// CompareScaling compares the machine-independent key ratios of two
// scaling bench runs: the parallel speedup per (dataset, method, worker
// count). Absolute times are useless across machines — the committed
// snapshot may come from a laptop and the candidate from a CI runner —
// but the *ratio* of a parallel run to its own serial run is comparable.
// A candidate speedup below baseline × (1 − tol) is a regression. Keys
// present in only one file are ignored: different machines sweep
// different worker counts (NumCPU is part of the sweep).
func CompareScaling(baseline, candidate BenchFile, tol float64) []Regression {
	base := make(map[string]float64)
	for _, r := range baseline.Records {
		if r.Exp != "scaling" || r.Param != "workers" {
			continue
		}
		if v, ok := r.Metrics["speedup"]; ok {
			base[recordKey(r)] = v
		}
	}
	var out []Regression
	for _, r := range candidate.Records {
		if r.Exp != "scaling" || r.Param != "workers" {
			continue
		}
		cand, ok := r.Metrics["speedup"]
		if !ok {
			continue
		}
		key := recordKey(r)
		b, ok := base[key]
		if !ok {
			continue
		}
		if cand < b*(1-tol) {
			out = append(out, Regression{Key: key, Metric: "speedup", Baseline: b, Candidate: cand})
		}
	}
	return out
}
