package expr

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/serve"
	"repro/internal/tsio"
)

// The distributed experiment (not in the paper): wall-clock time of the
// partition → local-mine → merge pipeline as the partition count grows,
// in two deployments over the Truck profile. "local" runs the whole
// pipeline in one process (core.WithPartitions); "shard" hosts one
// in-process convoyd shard per partition on a loopback port plus a
// coordinator fanning the query out over the versioned shard RPC, so the
// measured time includes the database upload to every shard and the
// label-space merge. Every answer is checked against the single-pass
// serial run — the sweep measures cost, never correctness.

// partitionSweep is the partition counts the experiment measures.
func partitionSweep() []int { return []int{1, 2, 4, 8} }

// Distributed prints and records the partition-count sweep.
func Distributed(o Options) error {
	var prof *datagen.Profile
	for _, p := range o.profiles() {
		if p.Name == "Truck" {
			pp := p
			prof = &pp
			break
		}
	}
	if prof == nil {
		p := datagen.Truck(o.Scale, o.Seed)
		prof = &p
	}
	db := prof.Generate()
	p := params(*prof)

	ref, err := core.NewQuery(core.WithParams(p)).Run(context.Background(), db)
	if err != nil {
		return fmt.Errorf("expr: Distributed reference run: %w", err)
	}

	var csv bytes.Buffer
	if err := tsio.WriteCSV(&csv, db); err != nil {
		return fmt.Errorf("expr: Distributed serialize: %w", err)
	}

	w := tab(o)
	fmt.Fprintln(w, "Distributed: partition → local-mine → merge vs partition count (Truck)")
	fmt.Fprintln(w, "mode\tpartitions\tconvoys\ttime (ms)")
	for _, n := range partitionSweep() {
		t0 := time.Now()
		res, err := core.NewQuery(core.WithParams(p),
			core.WithWorkers(o.Workers), core.WithPartitions(n)).Run(context.Background(), db)
		elapsed := time.Since(t0)
		if err != nil {
			return fmt.Errorf("expr: Distributed local partitions=%d: %w", n, err)
		}
		if !res.Equal(ref) {
			return fmt.Errorf("expr: Distributed local partitions=%d: answer differs from single pass", n)
		}
		fmt.Fprintf(w, "local\t%d\t%d\t%s\n", n, len(res), ms(elapsed))
		o.record(Record{Exp: "distributed", Dataset: prof.Name, Method: "local",
			Param: "partitions", Value: float64(n),
			Metrics: map[string]float64{
				"convoys": float64(len(res)),
				"time_ms": msf(elapsed),
			}})
	}
	for _, n := range partitionSweep() {
		convoys, elapsed, err := shardQuery(n, csv.Bytes(), p, o.Workers)
		if err != nil {
			return fmt.Errorf("expr: Distributed shard partitions=%d: %w", n, err)
		}
		if convoys != len(ref) {
			return fmt.Errorf("expr: Distributed shard partitions=%d: %d convoys, single pass found %d",
				n, convoys, len(ref))
		}
		fmt.Fprintf(w, "shard\t%d\t%d\t%s\n", n, convoys, ms(elapsed))
		o.record(Record{Exp: "distributed", Dataset: prof.Name, Method: "shard",
			Param: "partitions", Value: float64(n),
			Metrics: map[string]float64{
				"convoys": float64(convoys),
				"time_ms": msf(elapsed),
			}})
	}
	return w.Flush()
}

// shardQuery hosts n in-process shard convoyds and one coordinator on
// loopback ports, runs the query through the coordinator and returns the
// convoy count and wall time of that one request (uploads and merge
// included).
func shardQuery(n int, csv []byte, p core.Params, workers int) (int, time.Duration, error) {
	var shards []string
	var cleanup []func()
	defer func() {
		for _, f := range cleanup {
			f()
		}
	}()
	listen := func(srv *serve.Server) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		hs := &http.Server{Handler: srv}
		go func() { _ = hs.Serve(ln) }()
		cleanup = append(cleanup, func() { _ = hs.Close(); _ = srv.Close() })
		return "http://" + ln.Addr().String(), nil
	}
	for i := 0; i < n; i++ {
		base, err := listen(serve.New(serve.Config{ShardMode: true}))
		if err != nil {
			return 0, 0, err
		}
		shards = append(shards, base)
	}
	coord, err := listen(serve.New(serve.Config{Shards: shards}))
	if err != nil {
		return 0, 0, err
	}

	url := fmt.Sprintf("%s/v1/query?m=%d&k=%d&e=%g&workers=%d", coord, p.M, p.K, p.Eps, workers)
	t0 := time.Now()
	resp, err := http.Post(url, "text/csv", bytes.NewReader(csv))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(t0)
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("coordinator answered %d: %s", resp.StatusCode, data)
	}
	var out serve.QueryResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return 0, 0, fmt.Errorf("decode coordinator answer: %w", err)
	}
	// A short time range yields fewer windows than shards (the partitioner
	// never cuts a window thinner than the k−1 overlap), so the fan-out may
	// legitimately use a subset of the fleet.
	if out.Shards < 1 || out.Shards > n {
		return 0, 0, fmt.Errorf("coordinator used %d shards, want 1..%d", out.Shards, n)
	}
	return len(out.Convoys), elapsed, nil
}
