package expr

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/model"
	"repro/internal/proxgraph"
)

// The clusterers experiment (not in the paper): the pluggable-backend
// bridge. It generates the Contact profile, runs CMC with the default
// grid-DBSCAN backend, then derives the proximity log from the same
// movement (every pair within Eps becomes a weight-1 contact edge) and
// runs CMC again with the graph-connectivity backend. At m=2 density
// connection degenerates to graph connectivity, so the two answers must
// name the same convoys — the experiment asserts that label-for-label
// and records wall time, convoy count and clustering passes per backend.

// labeledConvoy is a convoy keyed by object labels instead of dense IDs,
// so answers from databases with different ID interning orders compare.
type labeledConvoy struct {
	labels []string
	start  model.Tick
	end    model.Tick
}

func (c labeledConvoy) key() string {
	return fmt.Sprintf("%v@[%d,%d]", c.labels, c.start, c.end)
}

// relabel maps a result's object IDs through label, sorting members and
// convoys into a canonical order.
func relabel(res core.Result, label func(model.ObjectID) string) []labeledConvoy {
	out := make([]labeledConvoy, 0, len(res))
	for _, c := range res {
		lc := labeledConvoy{start: c.Start, end: c.End}
		for _, id := range c.Objects {
			lc.labels = append(lc.labels, label(id))
		}
		sort.Strings(lc.labels)
		out = append(out, lc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

func sameConvoys(a, b []labeledConvoy) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].key() != b[i].key() {
			return false
		}
	}
	return true
}

// Clusterers prints and records the backend comparison.
func Clusterers(o Options) error {
	w := tab(o)
	fmt.Fprintln(w, "Clusterers: DBSCAN vs graph-connectivity backend (CMC, Contact)")
	fmt.Fprintln(w, "dataset\tbackend\ttime (ms)\tconvoys\tpasses")

	prof := datagen.Contact(o.Scale, o.Seed)
	db := prof.Generate()
	p := params(prof)
	ctx := context.Background()

	// Baseline: the default grid-DBSCAN backend over coordinates.
	var dst core.Stats
	t0 := time.Now()
	dres, err := core.NewQuery(core.WithParams(p), core.WithCMC(),
		core.WithStats(&dst)).Run(ctx, db)
	dElapsed := time.Since(t0)
	if err != nil {
		return fmt.Errorf("expr: Clusterers dbscan: %w", err)
	}

	// Graph view of the same movement: threshold pairwise distance at Eps
	// so each tick becomes a contact graph of weight-1 edges; the graph
	// query's Eps is then a weight threshold, and any value in (0, 1]
	// keeps every edge.
	log, err := proxgraph.FromDB(db, p.Eps)
	if err != nil {
		return fmt.Errorf("expr: Clusterers deriving contact log: %w", err)
	}
	gdb, err := log.DB()
	if err != nil {
		return fmt.Errorf("expr: Clusterers synthesizing graph db: %w", err)
	}
	var gst core.Stats
	gp := core.Params{M: p.M, K: p.K, Eps: 1}
	t0 = time.Now()
	gres, err := core.NewQuery(core.WithParams(gp), core.WithCMC(),
		core.WithClusterer(log.Clusterer()), core.WithStats(&gst)).Run(ctx, gdb)
	gElapsed := time.Since(t0)
	if err != nil {
		return fmt.Errorf("expr: Clusterers proxgraph: %w", err)
	}

	// At m=2 the answers must be identical up to labeling (the synthesized
	// database interns IDs by first contact, not source order).
	dbLabel := func(id model.ObjectID) string {
		if s := db.Traj(id).Label; s != "" {
			return s
		}
		return fmt.Sprintf("o%d", id)
	}
	if !sameConvoys(relabel(dres, dbLabel), relabel(gres, log.Label)) {
		return fmt.Errorf("expr: Clusterers: graph backend found %d convoy(s), DBSCAN %d, and they disagree at m=%d",
			len(gres), len(dres), p.M)
	}

	for _, row := range []struct {
		backend string
		elapsed time.Duration
		n       int
		passes  int64
	}{
		{core.DefaultBackend, dElapsed, len(dres), dst.ClusterPasses},
		{proxgraph.Backend, gElapsed, len(gres), gst.ClusterPasses},
	} {
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\n", prof.Name, row.backend, ms(row.elapsed), row.n, row.passes)
		o.record(Record{Exp: "clusterers", Dataset: prof.Name, Method: row.backend,
			Metrics: map[string]float64{
				"time_ms": msf(row.elapsed),
				"convoys": float64(row.n),
				"passes":  float64(row.passes),
			}})
	}
	return w.Flush()
}
