// Package expr is the experiment harness: one runner per evaluation table
// and figure of the paper (Table 3, Figures 12–17, Figure 19). Each runner
// regenerates the corresponding rows/series on the synthetic dataset
// profiles and prints a paper-style text table.
//
// Absolute numbers differ from the paper (different hardware, language and
// — necessarily — synthetic data); the point of the harness is the *shape*
// of each result: which method wins, by roughly what factor, and how the
// curves move with δ, λ and θ. EXPERIMENTS.md records the paper-vs-measured
// comparison produced by these runners.
package expr

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/model"
)

// Options configure a harness run.
type Options struct {
	// Scale multiplies the time-domain length of every dataset profile
	// (1 = the paper's full size; benchmarks use ~0.02–0.1).
	Scale float64
	// Seed drives the deterministic data generation.
	Seed int64
	// Out receives the printed tables.
	Out io.Writer
	// Profiles overrides the default four Table 3 profiles when non-nil.
	Profiles []datagen.Profile
	// Workers is the per-stage worker count every experiment's discovery
	// runs use (≤ 1 = serial). The scaling experiment ignores it and
	// sweeps its own counts.
	Workers int
	// Record, when non-nil, receives one machine-readable measurement per
	// printed table row (benchrunner -json writes these to BENCH files).
	Record func(Record)
}

// Record is one measurement row of an experiment, the machine-readable
// twin of a printed table line. Metrics keys are experiment-specific
// (time_ms, candidates, refine_units, …).
type Record struct {
	Exp     string `json:"exp"`
	Dataset string `json:"dataset,omitempty"`
	Method  string `json:"method,omitempty"`
	// Param/Value name the swept parameter of sweep experiments
	// (delta, lambda, theta).
	Param   string             `json:"param,omitempty"`
	Value   float64            `json:"value,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// record forwards a measurement to the recorder, if any.
func (o Options) record(r Record) {
	if o.Record != nil {
		o.Record(r)
	}
}

// msf converts a duration to fractional milliseconds for Record metrics.
func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func (o Options) profiles() []datagen.Profile {
	if o.Profiles != nil {
		return o.Profiles
	}
	return datagen.AllProfiles(o.Scale, o.Seed)
}

func (o Options) out() io.Writer {
	if o.Out != nil {
		return o.Out
	}
	return io.Discard
}

// params extracts the convoy query parameters of a profile.
func params(p datagen.Profile) core.Params {
	return core.Params{M: p.M, K: p.K, Eps: p.Eps}
}

// tab starts a tabwriter over the options' output.
func tab(o Options) *tabwriter.Writer {
	return tabwriter.NewWriter(o.out(), 2, 4, 2, ' ', 0)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

// timedCMC runs CMC with the options' worker count and reports the result
// with its wall time.
func timedCMC(db *model.DB, p core.Params, workers int) (core.Result, time.Duration, error) {
	t0 := time.Now()
	res, err := core.CMCParallel(db, p, workers)
	return res, time.Since(t0), err
}

// Table3 prints the dataset statistics, the parameter settings (paper
// values rescaled next to the guideline-derived values), and the number of
// convoys CuTS* discovers — the reproduction of Table 3.
func Table3(o Options) error {
	w := tab(o)
	fmt.Fprintln(w, "Table 3: dataset statistics and experiment settings")
	fmt.Fprintln(w, "dataset\tN\tT\tavg len\tpoints\tmissing%\tm\tk\te\tδ(table)\tδ(auto)\tλ(table)\tλ(auto)\tconvoys")
	for _, prof := range o.profiles() {
		db := prof.Generate()
		st := db.Stats()
		p := params(prof)
		res, runStats, err := core.Run(db, p, core.Config{Variant: core.VariantCuTSStar, Workers: o.Workers})
		if err != nil {
			return fmt.Errorf("expr: Table3 %s: %w", prof.Name, err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%d\t%.0f\t%d\t%d\t%g\t%.1f\t%.2f\t%d\t%d\t%d\n",
			prof.Name, st.NumObjects, st.TimeDomainLength, st.AvgTrajLen, st.TotalPoints,
			st.MissingFraction*100, p.M, p.K, p.Eps,
			prof.Delta, runStats.Delta, prof.Lambda, runStats.Lambda, len(res))
		o.record(Record{Exp: "table3", Dataset: prof.Name, Metrics: map[string]float64{
			"objects":     float64(st.NumObjects),
			"time_domain": float64(st.TimeDomainLength),
			"points":      float64(st.TotalPoints),
			"missing_pct": st.MissingFraction * 100,
			"delta_auto":  runStats.Delta,
			"lambda_auto": float64(runStats.Lambda),
			"convoys":     float64(len(res)),
		}})
	}
	return w.Flush()
}

// Figure12 prints total query-processing time of CMC versus the CuTS
// family on every dataset.
func Figure12(o Options) error {
	w := tab(o)
	fmt.Fprintln(w, "Figure 12: query processing time (ms)")
	fmt.Fprintln(w, "dataset\tCMC\tCuTS\tCuTS+\tCuTS*\tbest speedup")
	for _, prof := range o.profiles() {
		db := prof.Generate()
		p := params(prof)
		ref, cmcTime, err := timedCMC(db, p, o.Workers)
		if err != nil {
			return fmt.Errorf("expr: Figure12 %s: %w", prof.Name, err)
		}
		o.record(Record{Exp: "fig12", Dataset: prof.Name, Method: "CMC",
			Metrics: map[string]float64{"time_ms": msf(cmcTime)}})
		var times [3]time.Duration
		for i, variant := range []core.Variant{core.VariantCuTS, core.VariantCuTSPlus, core.VariantCuTSStar} {
			res, st, err := core.Run(db, p, core.Config{Variant: variant, Workers: o.Workers})
			if err != nil {
				return fmt.Errorf("expr: Figure12 %s %v: %w", prof.Name, variant, err)
			}
			if !res.Equal(ref) {
				return fmt.Errorf("expr: Figure12 %s: %v answer differs from CMC", prof.Name, variant)
			}
			times[i] = st.TotalTime()
			o.record(Record{Exp: "fig12", Dataset: prof.Name, Method: variant.String(),
				Metrics: map[string]float64{"time_ms": msf(times[i])}})
		}
		best := times[0]
		for _, t := range times[1:] {
			if t < best {
				best = t
			}
		}
		speedup := float64(cmcTime) / float64(best)
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%.1fx\n",
			prof.Name, ms(cmcTime), ms(times[0]), ms(times[1]), ms(times[2]), speedup)
	}
	return w.Flush()
}

// Figure13 prints the per-phase cost breakdown (simplification / filter /
// refinement) of the CuTS family on every dataset (the paper magnifies
// Cattle and Taxi).
func Figure13(o Options) error {
	w := tab(o)
	fmt.Fprintln(w, "Figure 13: query processing cost breakdown (ms)")
	fmt.Fprintln(w, "dataset\tmethod\tsimplify\tfilter\trefine\ttotal")
	for _, prof := range o.profiles() {
		db := prof.Generate()
		p := params(prof)
		for _, variant := range []core.Variant{core.VariantCuTS, core.VariantCuTSPlus, core.VariantCuTSStar} {
			_, st, err := core.Run(db, p, core.Config{Variant: variant, Workers: o.Workers})
			if err != nil {
				return fmt.Errorf("expr: Figure13 %s %v: %w", prof.Name, variant, err)
			}
			fmt.Fprintf(w, "%s\t%v\t%s\t%s\t%s\t%s\n",
				prof.Name, variant, ms(st.SimplifyTime), ms(st.FilterTime), ms(st.RefineTime), ms(st.TotalTime()))
			o.record(Record{Exp: "fig13", Dataset: prof.Name, Method: variant.String(),
				Metrics: map[string]float64{
					"simplify_ms": msf(st.SimplifyTime),
					"filter_ms":   msf(st.FilterTime),
					"refine_ms":   msf(st.RefineTime),
					"total_ms":    msf(st.TotalTime()),
				}})
		}
	}
	return w.Flush()
}

// Figure14 compares the filter under global versus actual tolerances for
// CuTS*: candidate counts (a) and elapsed time (b).
func Figure14(o Options) error {
	w := tab(o)
	fmt.Fprintln(w, "Figure 14: effect of actual tolerance (CuTS*)")
	fmt.Fprintln(w, "dataset\tcand(global)\tcand(actual)\ttime global (ms)\ttime actual (ms)")
	for _, prof := range o.profiles() {
		db := prof.Generate()
		p := params(prof)
		var cands [2]int
		var times [2]time.Duration
		for i, tol := range []int{1, 0} { // GlobalTolerance = 1, ActualTolerance = 0
			_, st, err := core.Run(db, p, core.Config{
				Variant:   core.VariantCuTSStar,
				Tolerance: toleranceMode(tol),
				Workers:   o.Workers,
			})
			if err != nil {
				return fmt.Errorf("expr: Figure14 %s: %w", prof.Name, err)
			}
			cands[i] = st.NumCandidates
			times[i] = st.TotalTime()
			mode := "global"
			if tol == 0 {
				mode = "actual"
			}
			o.record(Record{Exp: "fig14", Dataset: prof.Name, Method: mode,
				Metrics: map[string]float64{
					"candidates": float64(st.NumCandidates),
					"time_ms":    msf(st.TotalTime()),
				}})
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%s\n", prof.Name, cands[0], cands[1], ms(times[0]), ms(times[1]))
	}
	return w.Flush()
}
