package expr

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dbscan"
	"repro/internal/simplify"
)

// toleranceMode converts the Figure 14 loop index into the dbscan mode.
func toleranceMode(i int) dbscan.ToleranceMode {
	if i == 1 {
		return dbscan.GlobalTolerance
	}
	return dbscan.ActualTolerance
}

// deltaSweep returns the Î´ values for the Figure 15/16 sweeps: fractions
// and multiples of the profile's tuned Î´, mirroring the paper's absolute
// sweep ranges.
func deltaSweep(prof datagen.Profile) []float64 {
	base := prof.Delta
	if base <= 0 {
		base = prof.Eps / 2
	}
	return []float64{base * 0.25, base * 0.5, base, base * 1.5, base * 2}
}

// lambdaSweep returns the Î» values for the Figure 17 sweep.
func lambdaSweep(prof datagen.Profile) []int64 {
	base := prof.Lambda
	if base < 1 {
		base = 4
	}
	out := []int64{}
	for _, f := range []float64{0.5, 1, 2, 4} {
		v := int64(float64(base) * f)
		if v < 1 {
			v = 1
		}
		out = append(out, v)
	}
	// Dedup while preserving order (small bases collapse).
	seen := map[int64]bool{}
	uniq := out[:0]
	for _, v := range out {
		if !seen[v] {
			seen[v] = true
			uniq = append(uniq, v)
		}
	}
	return uniq
}

// Figure15 compares the three simplification methods on the Cattle profile
// (the paper's choice: tiny N, enormous T): vertex reduction (a) and
// simplification time (b) across the Î´ sweep.
func Figure15(o Options) error {
	var cattle *datagen.Profile
	for _, prof := range o.profiles() {
		if prof.Name == "Cattle" {
			p := prof
			cattle = &p
			break
		}
	}
	if cattle == nil {
		p := datagen.Cattle(o.Scale, o.Seed)
		cattle = &p
	}
	db := cattle.Generate()
	w := tab(o)
	fmt.Fprintln(w, "Figure 15: trajectory simplification methods (Cattle)")
	fmt.Fprintln(w, "Î´\tmethod\treduction%\ttime (ms)")
	for _, delta := range deltaSweep(*cattle) {
		for _, m := range []simplify.Method{simplify.DP, simplify.DPPlus, simplify.DPStar} {
			t0 := time.Now()
			sts := simplify.SimplifyAll(db, delta, m)
			elapsed := time.Since(t0)
			kept, total := 0, 0
			for _, st := range sts {
				kept += st.Len()
				total += st.Orig.Len()
			}
			red := 0.0
			if total > 0 {
				red = (1 - float64(kept)/float64(total)) * 100
			}
			fmt.Fprintf(w, "%.1f\t%v\t%.1f\t%s\n", delta, m, red, ms(elapsed))
			o.record(Record{Exp: "fig15", Dataset: cattle.Name, Method: m.String(),
				Param: "delta", Value: delta,
				Metrics: map[string]float64{
					"reduction_pct": red,
					"time_ms":       msf(elapsed),
				}})
		}
	}
	return w.Flush()
}

// figureSweepDelta runs the Figure 16 body for one dataset: refinement
// units and elapsed time of the CuTS family across the Î´ sweep.
func figureSweepDelta(o Options, prof datagen.Profile) error {
	db := prof.Generate()
	p := params(prof)
	w := tab(o)
	fmt.Fprintf(w, "Figure 16 (%s): effect of simplification tolerance Î´\n", prof.Name)
	fmt.Fprintln(w, "Î´\tmethod\trefinement units\tcandidates\ttime (ms)")
	for _, delta := range deltaSweep(prof) {
		for _, variant := range []core.Variant{core.VariantCuTS, core.VariantCuTSPlus, core.VariantCuTSStar} {
			_, st, err := core.Run(db, p, core.Config{Variant: variant, Delta: delta, Lambda: prof.Lambda, Workers: o.Workers})
			if err != nil {
				return fmt.Errorf("expr: Figure16 %s %v: %w", prof.Name, variant, err)
			}
			fmt.Fprintf(w, "%.1f\t%v\t%.0f\t%d\t%s\n",
				delta, variant, st.RefineUnits, st.NumCandidates, ms(st.TotalTime()))
			o.record(Record{Exp: "fig16", Dataset: prof.Name, Method: variant.String(),
				Param: "delta", Value: delta,
				Metrics: map[string]float64{
					"refine_units": st.RefineUnits,
					"candidates":   float64(st.NumCandidates),
					"time_ms":      msf(st.TotalTime()),
				}})
		}
	}
	return w.Flush()
}

// Figure16 sweeps Î´ on the Car and Taxi profiles (the paper's pair).
func Figure16(o Options) error {
	for _, prof := range o.profiles() {
		if prof.Name == "Car" || prof.Name == "Taxi" {
			if err := figureSweepDelta(o, prof); err != nil {
				return err
			}
		}
	}
	return nil
}

// figureSweepLambda runs the Figure 17 body for one dataset: refinement
// units and elapsed time across the Î» sweep.
func figureSweepLambda(o Options, prof datagen.Profile) error {
	db := prof.Generate()
	p := params(prof)
	w := tab(o)
	fmt.Fprintf(w, "Figure 17 (%s): effect of time-partition length Î»\n", prof.Name)
	fmt.Fprintln(w, "Î»\tmethod\trefinement units\tcandidates\ttime (ms)")
	for _, lambda := range lambdaSweep(prof) {
		for _, variant := range []core.Variant{core.VariantCuTS, core.VariantCuTSPlus, core.VariantCuTSStar} {
			_, st, err := core.Run(db, p, core.Config{Variant: variant, Delta: prof.Delta, Lambda: lambda, Workers: o.Workers})
			if err != nil {
				return fmt.Errorf("expr: Figure17 %s %v: %w", prof.Name, variant, err)
			}
			fmt.Fprintf(w, "%d\t%v\t%.0f\t%d\t%s\n",
				lambda, variant, st.RefineUnits, st.NumCandidates, ms(st.TotalTime()))
			o.record(Record{Exp: "fig17", Dataset: prof.Name, Method: variant.String(),
				Param: "lambda", Value: float64(lambda),
				Metrics: map[string]float64{
					"refine_units": st.RefineUnits,
					"candidates":   float64(st.NumCandidates),
					"time_ms":      msf(st.TotalTime()),
				}})
		}
	}
	return w.Flush()
}

// Figure17 sweeps Î» on the Truck and Cattle profiles (the paper's pair).
func Figure17(o Options) error {
	for _, prof := range o.profiles() {
		if prof.Name == "Truck" || prof.Name == "Cattle" {
			if err := figureSweepLambda(o, prof); err != nil {
				return err
			}
		}
	}
	return nil
}

// Figure19 runs the appendix accuracy study: MC2's false-positive and
// false-negative percentages against the exact convoy answer across Î¸.
func Figure19(o Options) error {
	w := tab(o)
	fmt.Fprintln(w, "Figure 19: discovery quality of MC2 for convoys")
	fmt.Fprintln(w, "dataset\tÎ¸\treported\treference\tfalse pos%\tfalse neg%")
	for _, prof := range o.profiles() {
		db := prof.Generate()
		p := params(prof)
		ref, err := core.CMCParallel(db, p, o.Workers)
		if err != nil {
			return fmt.Errorf("expr: Figure19 %s: %w", prof.Name, err)
		}
		for _, theta := range []float64{0.4, 0.6, 0.8, 1.0} {
			mc, err := core.MC2(db, p, theta)
			if err != nil {
				return fmt.Errorf("expr: Figure19 %s Î¸=%g: %w", prof.Name, theta, err)
			}
			rep := core.CompareAnswers(mc, ref)
			fmt.Fprintf(w, "%s\t%.1f\t%d\t%d\t%.1f\t%.1f\n",
				prof.Name, theta, rep.Reported, rep.Reference, rep.FalsePositives, rep.FalseNegatives)
			o.record(Record{Exp: "fig19", Dataset: prof.Name, Method: "MC2",
				Param: "theta", Value: theta,
				Metrics: map[string]float64{
					"reported":      float64(rep.Reported),
					"reference":     float64(rep.Reference),
					"false_pos_pct": rep.FalsePositives,
					"false_neg_pct": rep.FalseNegatives,
				}})
		}
	}
	return w.Flush()
}

// Experiments maps experiment identifiers to runners, in paper order.
var Experiments = []struct {
	ID   string
	Desc string
	Run  func(Options) error
}{
	{"table3", "dataset statistics and settings", Table3},
	{"fig12", "CMC vs CuTS family total time", Figure12},
	{"fig13", "phase cost breakdown", Figure13},
	{"fig14", "global vs actual tolerance", Figure14},
	{"fig15", "simplification method comparison", Figure15},
	{"fig16", "effect of Î´ (Car, Taxi)", Figure16},
	{"fig17", "effect of Î» (Truck, Cattle)", Figure17},
	{"fig19", "MC2 accuracy for convoys", Figure19},
	{"scaling", "worker-count scaling (Truck, Car)", Scaling},
	{"monitors", "standing-query fan-out, shared vs distinct keys (Truck)", Monitors},
	{"cancel", "time-to-abort and wasted work vs cancel point (Truck, Car)", Cancel},
	{"soak", "HTTP load scenarios against an in-process convoyd", Soak},
	{"clusterers", "DBSCAN vs graph-connectivity backend (Contact)", Clusterers},
	{"increment", "incremental vs from-scratch per-tick clustering (Commute churn sweep, Contact)", Increment},
	{"wal", "feed ingest throughput per WAL fsync policy vs in-memory, plus recovery replay time", Wal},
	{"distributed", "partition→mine→merge cost vs partition count, in-process and loopback shards (Truck)", Distributed},
}

// RunAll executes every experiment in paper order.
func RunAll(o Options) error {
	for _, e := range Experiments {
		if err := e.Run(o); err != nil {
			return err
		}
		fmt.Fprintln(o.out())
	}
	return nil
}

// Lookup returns the runner for an experiment id.
func Lookup(id string) (func(Options) error, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}
