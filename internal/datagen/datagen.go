// Package datagen synthesizes trajectory databases. The paper evaluates on
// four proprietary datasets (Truck, Cattle, Car, Taxi) that are not
// redistributable; this package generates seeded synthetic stand-ins that
// match the statistics reported in Table 3 — object count, time-domain
// length, mean trajectory length, sampling regularity, lifespan spread —
// and the structural property each dataset contributes to the evaluation
// (see DESIGN.md §3 for the substitution rationale).
//
// All generation is deterministic in the profile's seed.
package datagen

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/model"
)

// GroupSpec plants one co-traveling group.
type GroupSpec struct {
	// Size is the number of member objects.
	Size int
	// Start and End delimit the ticks during which members travel together.
	Start, End model.Tick
	// Spacing is the gap between consecutive members of the group's chain
	// formation; keep it ≤ the query's e so the chain is density-connected
	// (the elongated-group shape motivating density-based convoys).
	Spacing float64
}

// Scenario describes a synthetic world.
type Scenario struct {
	Seed int64
	// T is the time-domain length: ticks run 0 … T−1.
	T int64
	// World is the side length of the square world.
	World float64
	// Speed is the per-tick movement distance of the waypoint walkers.
	Speed float64
	// Groups are the planted co-traveling groups.
	Groups []GroupSpec
	// Background is the number of independently wandering objects.
	Background int
	// KeepProb is the probability a tick inside an object's lifespan is
	// recorded (1 = regular sampling; lower values simulate the Taxi
	// dataset's irregular reporting). First and last ticks are always kept.
	KeepProb float64
	// SpanFrac gives the [min, max] fraction of T an object lives;
	// {1, 1} makes every object span the whole domain (Cattle).
	SpanFrac [2]float64
	// Jitter is the per-tick positional noise added to group members; keep
	// it well below the query's e.
	Jitter float64
	// Curvature is the per-tick heading diffusion (radians stddev) of all
	// walkers; 0 selects a gentle default. Higher values bend the paths
	// more, lowering the vertex reduction achievable at a given δ.
	Curvature float64
	// GroupMembersFullSpan makes group members live over the whole time
	// domain, wandering solo outside their group window (the Cattle herd
	// shape: the same animals regroup repeatedly along a long history).
	// When false, members exist only during their group window (Truck
	// deliveries: each co-trip is a distinct trajectory).
	GroupMembersFullSpan bool
	// MoveProb is the per-tick probability a walker takes a step; on the
	// other ticks it reports a bit-identical position (a parked commuter
	// pinging from the same spot). 0 or ≥ 1 means every tick moves — the
	// classic always-moving walker. Low values produce the low-churn
	// streams the incremental clustering fast path is built for.
	MoveProb float64
}

// walker moves with a smoothly drifting heading at constant speed,
// reflecting off the world borders. Heading diffusion (curvature) makes the
// paths bend continuously like road or grazing movement, so line
// simplification produces segments of bounded spatial extent — straight
// waypoint legs would collapse into world-spanning segments that no real
// GPS trace exhibits.
type walker struct {
	pos       geom.Point
	heading   float64
	speed     float64
	world     float64
	curvature float64
	// moveProb gates each step: in (0, 1) the walker only moves on that
	// fraction of ticks and otherwise holds its exact position.
	moveProb float64
	r        *rand.Rand
}

func newWalker(r *rand.Rand, world, speed, curvature float64) *walker {
	return &walker{
		pos:       geom.Pt(r.Float64()*world, r.Float64()*world),
		heading:   r.Float64() * 2 * math.Pi,
		speed:     speed,
		world:     world,
		curvature: curvature,
		r:         r,
	}
}

// newWalkerAt starts a walker from a given position.
func newWalkerAt(r *rand.Rand, pos geom.Point, world, speed, curvature float64) *walker {
	w := newWalker(r, world, speed, curvature)
	w.pos = pos
	return w
}

func (w *walker) step() geom.Point {
	if w.moveProb > 0 && w.moveProb < 1 && w.r.Float64() >= w.moveProb {
		return w.pos // parked this tick: bit-identical position
	}
	w.heading += w.r.NormFloat64() * w.curvature
	nx := w.pos.X + w.speed*math.Cos(w.heading)
	ny := w.pos.Y + w.speed*math.Sin(w.heading)
	if nx < 0 {
		nx = -nx
		w.heading = math.Pi - w.heading
	} else if nx > w.world {
		nx = 2*w.world - nx
		w.heading = math.Pi - w.heading
	}
	if ny < 0 {
		ny = -ny
		w.heading = -w.heading
	} else if ny > w.world {
		ny = 2*w.world - ny
		w.heading = -w.heading
	}
	w.pos = geom.Pt(nx, ny)
	return w.pos
}

// Generate builds the database for the scenario.
func (sc Scenario) Generate() *model.DB {
	r := rand.New(rand.NewSource(sc.Seed))
	keep := sc.KeepProb
	if keep <= 0 || keep > 1 {
		keep = 1
	}
	curv := sc.Curvature
	if curv <= 0 {
		curv = 0.1
	}
	jitter := sc.Jitter
	db := model.NewDB()

	span := func(defaultLo, defaultHi model.Tick) (model.Tick, model.Tick) {
		loF, hiF := sc.SpanFrac[0], sc.SpanFrac[1]
		if loF <= 0 && hiF <= 0 {
			return defaultLo, defaultHi
		}
		if hiF > 1 {
			hiF = 1
		}
		if loF > hiF {
			loF = hiF
		}
		frac := loF + r.Float64()*(hiF-loF)
		length := int64(frac * float64(sc.T))
		if length < 1 {
			length = 1
		}
		maxStart := sc.T - length
		var start int64
		if maxStart > 0 {
			start = r.Int63n(maxStart + 1)
		}
		return model.Tick(start), model.Tick(start + length - 1)
	}

	emit := func(label string, lo, hi model.Tick, posAt func(t model.Tick) geom.Point) {
		var samples []model.Sample
		for t := lo; t <= hi; t++ {
			if t != lo && t != hi && r.Float64() > keep {
				continue
			}
			samples = append(samples, model.Sample{T: t, P: posAt(t)})
		}
		tr, err := model.NewTrajectory(label, samples)
		if err != nil {
			// Unreachable: lo ≤ hi always yields ≥ 1 strictly increasing sample.
			panic(err)
		}
		db.Add(tr)
	}

	for gi, g := range sc.Groups {
		anchor := newWalker(r, sc.World, sc.Speed, curv)
		anchor.moveProb = sc.MoveProb
		// Precompute the anchor path over the group's window.
		w0, w1 := g.Start, g.End
		if w1 >= model.Tick(sc.T) {
			w1 = model.Tick(sc.T) - 1
		}
		if w0 < 0 {
			w0 = 0
		}
		path := make([]geom.Point, w1-w0+1)
		for i := range path {
			path[i] = anchor.step()
		}
		// Chain formation direction, fixed per group.
		theta := r.Float64() * 2 * math.Pi
		dir := geom.Pt(math.Cos(theta), math.Sin(theta))
		for m := 0; m < g.Size; m++ {
			off := dir.Scale(float64(m) * g.Spacing)
			memberJitter := make([]geom.Point, len(path))
			for i := range memberJitter {
				memberJitter[i] = geom.Pt(r.Float64()*2*jitter-jitter, r.Float64()*2*jitter-jitter)
			}
			groupPos := func(t model.Tick) geom.Point {
				i := int(t - w0)
				return path[i].Add(off).Add(memberJitter[i])
			}
			if !sc.GroupMembersFullSpan {
				emit(groupLabel(gi, m), w0, w1, groupPos)
				continue
			}
			// Full-span member: solo wandering before and after the group
			// window, continuous at both window boundaries.
			pre := make([]geom.Point, w0)
			if w0 > 0 {
				wk := newWalkerAt(r, groupPos(w0), sc.World, sc.Speed, curv)
				wk.moveProb = sc.MoveProb
				for i := int(w0) - 1; i >= 0; i-- {
					pre[i] = wk.step() // generated backwards from the window start
				}
			}
			post := make([]geom.Point, model.Tick(sc.T)-1-w1)
			if len(post) > 0 {
				wk := newWalkerAt(r, groupPos(w1), sc.World, sc.Speed, curv)
				wk.moveProb = sc.MoveProb
				for i := range post {
					post[i] = wk.step()
				}
			}
			emit(groupLabel(gi, m), 0, model.Tick(sc.T)-1, func(t model.Tick) geom.Point {
				switch {
				case t < w0:
					return pre[t]
				case t > w1:
					return post[t-w1-1]
				default:
					return groupPos(t)
				}
			})
		}
	}
	for b := 0; b < sc.Background; b++ {
		lo, hi := span(0, model.Tick(sc.T)-1)
		wkr := newWalker(r, sc.World, sc.Speed, curv)
		wkr.moveProb = sc.MoveProb
		path := make([]geom.Point, hi-lo+1)
		for i := range path {
			path[i] = wkr.step()
		}
		emit(bgLabel(b), lo, hi, func(t model.Tick) geom.Point {
			return path[int(t-lo)]
		})
	}
	return db
}

func groupLabel(g, m int) string {
	return "g" + itoa(g) + "-" + itoa(m)
}

func bgLabel(b int) string { return "bg" + itoa(b) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
