package datagen

import (
	"math/rand"

	"repro/internal/model"
)

// Profile bundles a dataset scenario with the convoy-query parameters the
// paper used for it (Table 3). The four constructors emulate the paper's
// datasets at a configurable scale: scale multiplies the time-domain length
// (and group windows) while keeping the object count and spatial parameters,
// so the relative cost structure of the experiments is preserved.
type Profile struct {
	// Name is the paper's dataset name.
	Name string
	// Scenario generates the data (call Generate).
	Scenario Scenario
	// M, K, Eps are the convoy query parameters of Table 3 (K scaled).
	M   int
	K   int64
	Eps float64
	// Delta and Lambda are Table 3's tuned internal parameters, rescaled;
	// pass them to the CuTS family or use 0 to engage the automatic
	// guidelines.
	Delta  float64
	Lambda int64
}

// Generate builds the profile's database.
func (p Profile) Generate() *model.DB { return p.Scenario.Generate() }

// scaleTicks scales a tick quantity with a floor of 1.
func scaleTicks(v int64, scale float64) int64 {
	s := int64(float64(v) * scale)
	if s < 1 {
		return 1
	}
	return s
}

// groupWindows plants n group windows of the given length uniformly over
// [0, T), deterministically in seed.
func groupWindows(seed int64, n int, T, window int64, size func(r *rand.Rand) int, spacing float64) []GroupSpec {
	r := rand.New(rand.NewSource(seed))
	specs := make([]GroupSpec, 0, n)
	for i := 0; i < n; i++ {
		w := window + r.Int63n(window/2+1)
		if w >= T {
			w = T
		}
		var start int64
		if T > w {
			start = r.Int63n(T - w + 1)
		}
		specs = append(specs, GroupSpec{
			Size:    size(r),
			Start:   model.Tick(start),
			End:     model.Tick(start + w - 1),
			Spacing: spacing,
		})
	}
	return specs
}

// Truck emulates the Athens concrete-truck dataset: 276 objects over a
// T ≈ 10586 domain, short dense trajectories, many convoys along shared
// routes (the paper found 91 with m=3, k=180, e=8).
func Truck(scale float64, seed int64) Profile {
	T := scaleTicks(10586, scale)
	k := scaleTicks(180, scale)
	window := scaleTicks(400, scale)
	if window < k+2 {
		window = k + 2
	}
	groups := groupWindows(seed+1, 60, T, window,
		func(r *rand.Rand) int { return 3 + r.Intn(3) }, 4.0)
	nGrouped := 0
	for _, g := range groups {
		nGrouped += g.Size
	}
	bg := 276 - nGrouped
	if bg < 0 {
		bg = 0
	}
	return Profile{
		Name: "Truck",
		Scenario: Scenario{
			Seed:       seed,
			T:          T,
			World:      1000,
			Speed:      3,
			Groups:     groups,
			Background: bg,
			KeepProb:   1,
			SpanFrac:   [2]float64{0.015, 0.05},
			Jitter:     1.5,
			Curvature:  0.08,
		},
		M: 3, K: k, Eps: 8,
		Delta: 5.9, Lambda: 4,
	}
}

// Cattle emulates the CSIRO virtual-fencing herd: 13 objects whose
// trajectories span the whole (very long) time domain — the dataset that
// makes simplification cost dominate (Figures 13, 15, 17). The paper found
// 47 convoys with m=2, k=180, e=300.
func Cattle(scale float64, seed int64) Profile {
	T := scaleTicks(175636, scale)
	k := scaleTicks(180, scale)
	window := scaleTicks(2000, scale)
	if window < k+2 {
		window = k + 2
	}
	// Sub-herd windows appear repeatedly along the long history.
	nWindows := int(T / (window * 2))
	if nWindows < 4 {
		nWindows = 4
	}
	groups := groupWindows(seed+1, nWindows, T, window,
		func(r *rand.Rand) int { return 2 + r.Intn(2) }, 120)
	// Cap the grouped-object budget so the total object count stays at 13;
	// the real herd regroups over time, but each synthetic group member is
	// a distinct object, so unlimited windows would inflate N.
	capped := groups[:0]
	total := 0
	for _, g := range groups {
		if total+g.Size > 11 {
			break
		}
		total += g.Size
		capped = append(capped, g)
	}
	return Profile{
		Name: "Cattle",
		Scenario: Scenario{
			Seed:                 seed,
			T:                    T,
			World:                15000,
			Speed:                3,
			Groups:               capped,
			Background:           13 - total,
			KeepProb:             1,
			SpanFrac:             [2]float64{1, 1},
			Jitter:               40,
			Curvature:            0.12,
			GroupMembersFullSpan: true,
		},
		M: 2, K: k, Eps: 300,
		Delta: 274.2, Lambda: 36,
	}
}

// Car emulates the Copenhagen private-car dataset: 183 objects with highly
// variable trajectory lengths (the paper found 15 convoys with m=3, k=180,
// e=80).
func Car(scale float64, seed int64) Profile {
	T := scaleTicks(8757, scale)
	k := scaleTicks(180, scale)
	window := scaleTicks(500, scale)
	if window < k+2 {
		window = k + 2
	}
	groups := groupWindows(seed+1, 8, T, window,
		func(r *rand.Rand) int { return 3 + r.Intn(2) }, 30)
	nGrouped := 0
	for _, g := range groups {
		nGrouped += g.Size
	}
	bg := 183 - nGrouped
	if bg < 0 {
		bg = 0
	}
	return Profile{
		Name: "Car",
		Scenario: Scenario{
			Seed:       seed,
			T:          T,
			World:      4000,
			Speed:      8,
			Groups:     groups,
			Background: bg,
			KeepProb:   0.95,
			SpanFrac:   [2]float64{0.01, 0.6},
			Jitter:     15,
			Curvature:  0.1,
		},
		M: 3, K: k, Eps: 80,
		Delta: 63.4, Lambda: 24,
	}
}

// Taxi emulates the Beijing taxi logs: 500 objects over a short domain with
// heavily irregular sampling and near-uniform spread — clustering dominates
// and few convoys exist (the paper found 4 with m=3, k=180, e=40).
func Taxi(scale float64, seed int64) Profile {
	T := scaleTicks(965, scale)
	k := scaleTicks(180, scale)
	window := scaleTicks(400, scale)
	if window < k+2 {
		window = k + 2
	}
	groups := groupWindows(seed+1, 2, T, window,
		func(r *rand.Rand) int { return 3 }, 15)
	nGrouped := 0
	for _, g := range groups {
		nGrouped += g.Size
	}
	return Profile{
		Name: "Taxi",
		Scenario: Scenario{
			Seed:       seed,
			T:          T,
			World:      6000,
			Speed:      12,
			Groups:     groups,
			Background: 500 - nGrouped,
			KeepProb:   0.35,
			SpanFrac:   [2]float64{0.3, 0.9},
			Jitter:     8,
			Curvature:  0.06,
		},
		M: 3, K: k, Eps: 40,
		Delta: 31.5, Lambda: 4,
	}
}

// Contact is a synthetic close-encounter world for the proximity-graph
// backend: a small campus-scale area where planted groups brush shoulders
// constantly and background objects wander through. It is not one of the
// paper's datasets — thresholding pairwise distance at Eps turns each tick
// into a contact graph (see proxgraph.FromDB), which is how the clusterers
// benchmark compares the DBSCAN and graph-connectivity backends on equal
// footing.
func Contact(scale float64, seed int64) Profile {
	T := scaleTicks(2000, scale)
	k := scaleTicks(60, scale)
	window := scaleTicks(300, scale)
	if window < k+2 {
		window = k + 2
	}
	groups := groupWindows(seed+1, 10, T, window,
		func(r *rand.Rand) int { return 2 + r.Intn(3) }, 1.2)
	nGrouped := 0
	for _, g := range groups {
		nGrouped += g.Size
	}
	bg := 60 - nGrouped
	if bg < 0 {
		bg = 0
	}
	return Profile{
		Name: "Contact",
		Scenario: Scenario{
			Seed:       seed,
			T:          T,
			World:      200,
			Speed:      1.5,
			Groups:     groups,
			Background: bg,
			KeepProb:   1,
			SpanFrac:   [2]float64{0.2, 0.8},
			Jitter:     0.5,
			Curvature:  0.1,
		},
		M: 2, K: k, Eps: 3,
	}
}

// Commute is a low-churn world built for the incremental clustering fast
// path: a persistent population of ~300 objects where only about 10% move
// between consecutive ticks (commuters parked at home or the office, a few
// in transit). It is not one of the paper's datasets and stays out of
// AllProfiles; the increment benchmark uses it as the favorable end of the
// churn spectrum.
func Commute(scale float64, seed int64) Profile {
	return CommuteChurn(scale, seed, 0.1)
}

// CommuteChurn is Commute with an explicit per-tick move probability, so
// the increment benchmark can sweep churn from near-frozen to
// every-object-every-tick on an otherwise identical world. Jitter is zero
// on purpose: a parked object reports a bit-identical position, which is
// what lets the incremental engine skip its neighborhood entirely.
func CommuteChurn(scale float64, seed int64, churn float64) Profile {
	T := scaleTicks(3000, scale)
	k := scaleTicks(120, scale)
	window := scaleTicks(600, scale)
	if window < k+2 {
		window = k + 2
	}
	groups := groupWindows(seed+1, 12, T, window,
		func(r *rand.Rand) int { return 3 + r.Intn(3) }, 4.0)
	nGrouped := 0
	for _, g := range groups {
		nGrouped += g.Size
	}
	bg := 300 - nGrouped
	if bg < 0 {
		bg = 0
	}
	return Profile{
		Name: "Commute",
		Scenario: Scenario{
			Seed:       seed,
			T:          T,
			World:      2000,
			Speed:      6,
			Groups:     groups,
			Background: bg,
			KeepProb:   1,
			SpanFrac:   [2]float64{0.8, 1},
			Jitter:     0,
			Curvature:  0.08,
			MoveProb:   churn,
		},
		M: 3, K: k, Eps: 10,
	}
}

// AllProfiles returns the four dataset profiles at the given scale.
func AllProfiles(scale float64, seed int64) []Profile {
	return []Profile{
		Truck(scale, seed),
		Cattle(scale, seed+100),
		Car(scale, seed+200),
		Taxi(scale, seed+300),
	}
}
