package datagen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/model"
)

func TestScenarioDeterministic(t *testing.T) {
	sc := Scenario{
		Seed: 42, T: 50, World: 100, Speed: 2,
		Groups:     []GroupSpec{{Size: 3, Start: 5, End: 30, Spacing: 1}},
		Background: 4,
		KeepProb:   0.8,
		SpanFrac:   [2]float64{0.2, 0.9},
		Jitter:     0.1,
	}
	a, b := sc.Generate(), sc.Generate()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for id := 0; id < a.Len(); id++ {
		ta, tb := a.Traj(id), b.Traj(id)
		if ta.Label != tb.Label || ta.Len() != tb.Len() {
			t.Fatalf("object %d differs", id)
		}
		for i := range ta.Samples {
			if ta.Samples[i] != tb.Samples[i] {
				t.Fatalf("object %d sample %d differs", id, i)
			}
		}
	}
	// A different seed produces different data.
	sc.Seed = 43
	c := sc.Generate()
	same := true
	for id := 0; id < a.Len() && same; id++ {
		if a.Traj(id).Len() != c.Traj(id).Len() {
			same = false
			break
		}
		for i := range a.Traj(id).Samples {
			if a.Traj(id).Samples[i] != c.Traj(id).Samples[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestScenarioObjectCountsAndSpans(t *testing.T) {
	sc := Scenario{
		Seed: 7, T: 100, World: 200, Speed: 3,
		Groups:     []GroupSpec{{Size: 4, Start: 10, End: 60, Spacing: 2}, {Size: 2, Start: 0, End: 99, Spacing: 2}},
		Background: 5,
		KeepProb:   1,
		SpanFrac:   [2]float64{1, 1},
	}
	db := sc.Generate()
	if db.Len() != 4+2+5 {
		t.Fatalf("object count = %d", db.Len())
	}
	// Group members span exactly their window.
	g0, ok := db.ByLabel("g0-0")
	if !ok {
		t.Fatal("g0-0 missing")
	}
	if g0.Start() != 10 || g0.End() != 60 {
		t.Errorf("group member span = [%d,%d]", g0.Start(), g0.End())
	}
	// Background objects with SpanFrac {1,1} cover the whole domain.
	bg, ok := db.ByLabel("bg0")
	if !ok {
		t.Fatal("bg0 missing")
	}
	if bg.Start() != 0 || bg.End() != 99 {
		t.Errorf("background span = [%d,%d]", bg.Start(), bg.End())
	}
	lo, hi, _ := db.TimeRange()
	if lo != 0 || hi != 99 {
		t.Errorf("time range = [%d,%d]", lo, hi)
	}
}

func TestScenarioIrregularSampling(t *testing.T) {
	sc := Scenario{
		Seed: 3, T: 200, World: 100, Speed: 1,
		Background: 10, KeepProb: 0.3, SpanFrac: [2]float64{1, 1},
	}
	db := sc.Generate()
	st := db.Stats()
	if st.MissingFraction < 0.5 || st.MissingFraction > 0.85 {
		t.Errorf("missing fraction = %g, want ≈ 0.7", st.MissingFraction)
	}
	// Endpoints always sampled.
	for _, tr := range db.Trajectories() {
		if tr.Start() != 0 || tr.End() != 199 {
			t.Errorf("endpoint sampling broken: [%d,%d]", tr.Start(), tr.End())
		}
	}
}

func TestGroupMembersStayConnected(t *testing.T) {
	spacing := 2.0
	sc := Scenario{
		Seed: 11, T: 60, World: 300, Speed: 4,
		Groups: []GroupSpec{{Size: 4, Start: 0, End: 59, Spacing: spacing}},
		Jitter: 0.2,
	}
	db := sc.Generate()
	// Consecutive chain members stay within spacing+2·jitter of each other
	// at every tick — the density-connection invariant the planted groups
	// are designed to satisfy.
	for tick := model.Tick(0); tick < 60; tick++ {
		for m := 0; m+1 < 4; m++ {
			a, _ := db.Traj(m).LocationAt(tick)
			b, _ := db.Traj(m + 1).LocationAt(tick)
			if d := geom.D(a, b); d > spacing+0.4+1e-9 {
				t.Fatalf("members %d,%d at tick %d are %g apart", m, m+1, tick, d)
			}
		}
	}
}

func TestPlantedGroupFoundAsConvoy(t *testing.T) {
	sc := Scenario{
		Seed: 19, T: 80, World: 500, Speed: 5,
		Groups:     []GroupSpec{{Size: 3, Start: 10, End: 70, Spacing: 2}},
		Background: 6,
		KeepProb:   1,
		SpanFrac:   [2]float64{0.5, 1},
		Jitter:     0.2,
	}
	db := sc.Generate()
	res, err := core.CMC(db, core.Params{M: 3, K: 30, Eps: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res {
		if c.Contains(0) && c.Contains(1) && c.Contains(2) && c.Lifetime() >= 30 {
			found = true
		}
	}
	if !found {
		t.Errorf("planted group not discovered: %v", res)
	}
}

func TestProfilesShapeMatchesTable3(t *testing.T) {
	const scale = 0.02
	profiles := AllProfiles(scale, 1)
	if len(profiles) != 4 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	wantN := map[string]int{"Truck": 276, "Cattle": 13, "Car": 183, "Taxi": 500}
	for _, p := range profiles {
		db := p.Generate()
		n := db.Len()
		want := wantN[p.Name]
		// Group planting may shift counts slightly; stay within 10%.
		if n < want*9/10 || n > want*11/10 {
			t.Errorf("%s: N = %d, want ≈ %d", p.Name, n, want)
		}
		if err := (core.Params{M: p.M, K: p.K, Eps: p.Eps}).Validate(); err != nil {
			t.Errorf("%s: params invalid: %v", p.Name, err)
		}
		st := db.Stats()
		switch p.Name {
		case "Cattle":
			if st.NumObjects != 13 {
				t.Errorf("Cattle N = %d", st.NumObjects)
			}
			if st.MissingFraction > 0.01 {
				t.Errorf("Cattle should be regularly sampled, missing %g", st.MissingFraction)
			}
			if st.AvgDuration < float64(st.TimeDomainLength)*0.99 {
				t.Errorf("Cattle trajectories should span the domain: %+v", st)
			}
		case "Taxi":
			if st.MissingFraction < 0.4 {
				t.Errorf("Taxi should be irregularly sampled, missing %g", st.MissingFraction)
			}
		case "Truck":
			if st.AvgDuration > float64(st.TimeDomainLength)*0.2 {
				t.Errorf("Truck trajectories should be short: %+v", st)
			}
		}
	}
}

func TestProfilesScaleTicks(t *testing.T) {
	small := Truck(0.01, 1)
	big := Truck(0.1, 1)
	if small.Scenario.T >= big.Scenario.T {
		t.Errorf("scaling broken: %d vs %d", small.Scenario.T, big.Scenario.T)
	}
	if small.K >= big.K {
		t.Errorf("K scaling broken: %d vs %d", small.K, big.K)
	}
	if small.K < 1 || scaleTicks(0, 0.5) != 1 {
		t.Error("tick floor broken")
	}
}

func TestContactProfile(t *testing.T) {
	p := Contact(0.1, 1)
	if err := (core.Params{M: p.M, K: p.K, Eps: p.Eps}).Validate(); err != nil {
		t.Fatalf("params invalid: %v", err)
	}
	db := p.Generate()
	if n := db.Len(); n < 40 || n > 70 {
		t.Errorf("N = %d, want ≈ 60", n)
	}
	// Deterministic in the seed, like every profile.
	again := Contact(0.1, 1).Generate()
	if db.Len() != again.Len() {
		t.Error("contact profile not deterministic")
	}
	// The world is small enough that contacts at Eps actually happen:
	// some pair is within Eps at some tick (otherwise the derived contact
	// graph would be empty and the profile useless).
	lo, hi, ok := db.TimeRange()
	if !ok {
		t.Fatal("empty database")
	}
	found := false
	for tick := lo; tick <= hi && !found; tick++ {
		ids, pts := db.SnapshotAt(tick)
		for i := 0; i < len(ids) && !found; i++ {
			for j := i + 1; j < len(pts); j++ {
				if geom.D(pts[i], pts[j]) <= p.Eps {
					found = true
					break
				}
			}
		}
	}
	if !found {
		t.Error("no contact within Eps anywhere in the domain")
	}
}

// measuredChurn is the fraction of consecutive-tick transitions in which
// an object actually moved (any coordinate changed at all).
func measuredChurn(db *model.DB) float64 {
	var moved, transitions int
	for id := 0; id < db.Len(); id++ {
		s := db.Traj(id).Samples
		for i := 1; i < len(s); i++ {
			transitions++
			if s[i].P != s[i-1].P {
				moved++
			}
		}
	}
	if transitions == 0 {
		return 0
	}
	return float64(moved) / float64(transitions)
}

// The Commute profile's point is its churn rate: parked objects report
// bit-identical positions, so the measured per-tick move fraction tracks
// the requested one — the property the incremental clustering fast path
// and its benchmark depend on.
func TestCommuteChurnRate(t *testing.T) {
	p := Commute(0.05, 1)
	if err := (core.Params{M: p.M, K: p.K, Eps: p.Eps}).Validate(); err != nil {
		t.Fatalf("params invalid: %v", err)
	}
	db := p.Generate()
	if n := db.Len(); n < 250 || n > 350 {
		t.Errorf("N = %d, want ≈ 300", n)
	}
	if got := measuredChurn(db); got < 0.05 || got > 0.2 {
		t.Errorf("measured churn %.3f at requested 0.1, want within [0.05, 0.2]", got)
	}
	// The sweep endpoints behave: near-frozen stays near-frozen, full
	// churn moves essentially everything.
	if got := measuredChurn(CommuteChurn(0.05, 1, 0.01).Generate()); got > 0.05 {
		t.Errorf("churn 0.01: measured %.3f, want ≤ 0.05", got)
	}
	if got := measuredChurn(CommuteChurn(0.05, 1, 1).Generate()); got < 0.99 {
		t.Errorf("churn 1: measured %.3f, want ≈ 1", got)
	}
	// Deterministic in the seed, like every profile.
	if again := Commute(0.05, 1).Generate(); db.Len() != again.Len() {
		t.Error("commute profile not deterministic")
	}
}
