// Package geom provides the planar geometry substrate used throughout the
// convoy-discovery library: points, line segments, axis-aligned rectangles,
// and the four distance functions of the paper's Definition 1 —
//
//   - D(p, q):        Euclidean distance between two points,
//   - DPL(p, l):      shortest distance from a point to a line segment,
//   - DLL(lu, lv):    shortest distance between two line segments,
//   - Dmin(Bu, Bv):   minimum distance between two boxes,
//
// plus the Closest-Point-of-Approach (CPA) machinery behind the tightened
// synchronous segment distance D* of Section 6.2.
//
// All computations use float64 and are purely value-based; the package has
// no dependencies beyond math.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the 2-D spatial domain.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String renders the point as "(x, y)" with compact formatting.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Finite reports whether f is a usable coordinate (not NaN, not ±Inf).
// Non-finite values poison every downstream distance computation and can
// panic the spatial index, so every ingestion surface (CSV/CTB readers,
// the feed API) rejects them with this shared predicate.
func Finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Finite reports whether both coordinates are finite.
func (p Point) Finite() bool { return Finite(p.X) && Finite(p.Y) }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p − q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product of p and q viewed as
// vectors; its sign gives the orientation of q relative to p.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p viewed as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Lerp linearly interpolates between p and q: result = p + f·(q−p).
// f is not clamped; f=0 yields p and f=1 yields q.
func (p Point) Lerp(q Point, f float64) Point {
	return Point{p.X + f*(q.X-p.X), p.Y + f*(q.Y-p.Y)}
}

// D returns the Euclidean distance between two points (Definition 1).
func D(p, q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// D2 returns the squared Euclidean distance between two points. Useful for
// comparisons that avoid the square root.
func D2(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Segment is a directed line segment from A to B. Most distance functions
// treat it as an undirected point set.
type Segment struct {
	A, B Point
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// String renders the segment as "A–B".
func (s Segment) String() string { return fmt.Sprintf("%v–%v", s.A, s.B) }

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return D(s.A, s.B) }

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// At returns the point A + f·(B−A); f is not clamped.
func (s Segment) At(f float64) Point { return s.A.Lerp(s.B, f) }

// Bounds returns the minimum bounding box B(l) of the segment.
func (s Segment) Bounds() Rect {
	return Rect{
		MinX: math.Min(s.A.X, s.B.X),
		MinY: math.Min(s.A.Y, s.B.Y),
		MaxX: math.Max(s.A.X, s.B.X),
		MaxY: math.Max(s.A.Y, s.B.Y),
	}
}

// ClosestFraction returns the parameter f in [0,1] such that s.At(f) is the
// point of s closest to p. A degenerate (zero-length) segment yields 0.
func (s Segment) ClosestFraction(p Point) float64 {
	ab := s.B.Sub(s.A)
	den := ab.Norm2()
	if den == 0 {
		return 0
	}
	f := p.Sub(s.A).Dot(ab) / den
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// ClosestPoint returns the point on s closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	return s.At(s.ClosestFraction(p))
}

// DPL returns the shortest Euclidean distance between point p and any point
// on segment l (Definition 1).
func DPL(p Point, l Segment) float64 {
	return D(p, l.ClosestPoint(p))
}

// DPLine returns the perpendicular distance from p to the *infinite line*
// through l.A and l.B. If the segment is degenerate it falls back to the
// point distance. This is the distance used by the classic Douglas–Peucker
// split test.
func DPLine(p Point, l Segment) float64 {
	ab := l.B.Sub(l.A)
	den := ab.Norm()
	if den == 0 {
		return D(p, l.A)
	}
	return math.Abs(ab.Cross(p.Sub(l.A))) / den
}

// segmentsIntersect reports whether the two closed segments share at least
// one point, including collinear-overlap and endpoint-touch cases.
func segmentsIntersect(s, t Segment) bool {
	d1 := direction(t.A, t.B, s.A)
	d2 := direction(t.A, t.B, s.B)
	d3 := direction(s.A, s.B, t.A)
	d4 := direction(s.A, s.B, t.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(t.A, t.B, s.A):
		return true
	case d2 == 0 && onSegment(t.A, t.B, s.B):
		return true
	case d3 == 0 && onSegment(s.A, s.B, t.A):
		return true
	case d4 == 0 && onSegment(s.A, s.B, t.B):
		return true
	}
	return false
}

// direction returns the orientation of point p relative to the directed line
// a→b: positive for left turn, negative for right turn, zero for collinear.
func direction(a, b, p Point) float64 {
	return b.Sub(a).Cross(p.Sub(a))
}

// onSegment reports whether collinear point p lies within the bounding box of
// segment ab; callers must ensure collinearity first.
func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// DLL returns the shortest Euclidean distance between any two points on the
// segments lu and lv respectively (Definition 1). Intersecting segments have
// distance zero; otherwise the minimum is attained at an endpoint of one of
// the segments against the other segment.
func DLL(lu, lv Segment) float64 {
	if segmentsIntersect(lu, lv) {
		return 0
	}
	d := DPL(lu.A, lv)
	if v := DPL(lu.B, lv); v < d {
		d = v
	}
	if v := DPL(lv.A, lu); v < d {
		d = v
	}
	if v := DPL(lv.B, lu); v < d {
		d = v
	}
	return d
}

// Rect is an axis-aligned rectangle (a minimum bounding box in the paper's
// terminology). A Rect with Min > Max on either axis is considered empty.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the identity element for Union: a rectangle that contains
// nothing and leaves any rectangle unchanged when united with it.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// RectOf returns the minimum bounding box of a set of points. With no points
// it returns EmptyRect().
func RectOf(pts ...Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// String renders the rectangle as "[minX,minY..maxX,maxY]".
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g..%g,%g]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// Contains reports whether p lies inside or on the border of r.
func (r Rect) Contains(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// ExtendPoint returns the smallest rectangle covering both r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return Rect{
		MinX: math.Min(r.MinX, p.X),
		MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X),
		MaxY: math.Max(r.MaxY, p.Y),
	}
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Inflate returns r grown by d on every side. Negative d shrinks the
// rectangle (possibly into emptiness).
func (r Rect) Inflate(d float64) Rect {
	return Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// Intersects reports whether the two rectangles share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Dmin returns the minimum distance between any pair of points belonging to
// the two boxes (Definition 1). Overlapping boxes have distance zero.
// Calling Dmin with an empty rectangle returns +Inf, which is the correct
// identity for pruning (an empty set is infinitely far from everything).
func Dmin(bu, bv Rect) float64 {
	if bu.IsEmpty() || bv.IsEmpty() {
		return math.Inf(1)
	}
	dx := axisGap(bu.MinX, bu.MaxX, bv.MinX, bv.MaxX)
	dy := axisGap(bu.MinY, bu.MaxY, bv.MinY, bv.MaxY)
	return math.Hypot(dx, dy)
}

// axisGap returns the gap between intervals [aLo,aHi] and [bLo,bHi] on one
// axis, zero when they overlap.
func axisGap(aLo, aHi, bLo, bHi float64) float64 {
	switch {
	case bLo > aHi:
		return bLo - aHi
	case aLo > bHi:
		return aLo - bHi
	default:
		return 0
	}
}
