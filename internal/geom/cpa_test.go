package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestTimedSegmentPosAt(t *testing.T) {
	ts := TimedSeg(Pt(0, 0), Pt(10, 20), 2, 12)
	if got := ts.PosAt(2); got != Pt(0, 0) {
		t.Errorf("PosAt(start) = %v", got)
	}
	if got := ts.PosAt(12); got != Pt(10, 20) {
		t.Errorf("PosAt(end) = %v", got)
	}
	if got := ts.PosAt(7); got != Pt(5, 10) {
		t.Errorf("PosAt(mid) = %v", got)
	}
	if got := ts.Velocity(); got != Pt(1, 2) {
		t.Errorf("Velocity = %v", got)
	}
}

func TestTimedSegmentZeroDuration(t *testing.T) {
	ts := TimedSeg(Pt(3, 4), Pt(9, 9), 5, 5)
	if got := ts.PosAt(5); got != Pt(3, 4) {
		t.Errorf("PosAt on zero-duration = %v, want A", got)
	}
	if got := ts.Velocity(); got != (Point{}) {
		t.Errorf("Velocity on zero-duration = %v", got)
	}
}

func TestOverlapInterval(t *testing.T) {
	a := TimedSeg(Pt(0, 0), Pt(1, 0), 0, 10)
	b := TimedSeg(Pt(0, 0), Pt(1, 0), 5, 15)
	lo, hi, ok := a.OverlapInterval(b)
	if !ok || lo != 5 || hi != 10 {
		t.Errorf("OverlapInterval = %g,%g,%v", lo, hi, ok)
	}
	c := TimedSeg(Pt(0, 0), Pt(1, 0), 11, 15)
	if _, _, ok := a.OverlapInterval(c); ok {
		t.Error("disjoint intervals reported overlapping")
	}
	// Touching at a single instant counts as overlapping.
	d := TimedSeg(Pt(0, 0), Pt(1, 0), 10, 15)
	if lo, hi, ok := a.OverlapInterval(d); !ok || lo != 10 || hi != 10 {
		t.Errorf("touching OverlapInterval = %g,%g,%v", lo, hi, ok)
	}
}

func TestDStarDisjointIntervalsIsInf(t *testing.T) {
	a := TimedSeg(Pt(0, 0), Pt(1, 0), 0, 5)
	b := TimedSeg(Pt(0, 0), Pt(1, 0), 6, 10)
	if got := DStar(a, b); !math.IsInf(got, 1) {
		t.Errorf("DStar on disjoint intervals = %g, want +Inf", got)
	}
}

func TestDStarHeadOnPass(t *testing.T) {
	// Two objects on the x-axis moving toward each other; they meet at t=5,
	// x=5. DStar must be 0 while DLL is also 0 (the spatial segments overlap).
	a := TimedSeg(Pt(0, 0), Pt(10, 0), 0, 10)
	b := TimedSeg(Pt(10, 0), Pt(0, 0), 0, 10)
	if got := DStar(a, b); !almostEqual(got, 0) {
		t.Errorf("DStar head-on = %g, want 0", got)
	}
	tc, ok := CPATime(a, b)
	if !ok || !almostEqual(tc, 5) {
		t.Errorf("CPATime = %g,%v want 5", tc, ok)
	}
}

func TestDStarFollowerNeverMeets(t *testing.T) {
	// Object b follows a along the same path, two time units behind. The
	// spatial segments overlap (DLL = 0) but synchronously they are always
	// 2 units apart: D* captures that.
	a := TimedSeg(Pt(0, 0), Pt(10, 0), 0, 10)
	b := TimedSeg(Pt(-2, 0), Pt(8, 0), 0, 10)
	if dll := DLL(a.Segment, b.Segment); !almostEqual(dll, 0) {
		t.Fatalf("setup: DLL = %g, want 0", dll)
	}
	if got := DStar(a, b); !almostEqual(got, 2) {
		t.Errorf("DStar follower = %g, want 2", got)
	}
}

func TestDStarParallelConstantGap(t *testing.T) {
	a := TimedSeg(Pt(0, 0), Pt(10, 0), 0, 10)
	b := TimedSeg(Pt(0, 3), Pt(10, 3), 0, 10)
	if got := DStar(a, b); !almostEqual(got, 3) {
		t.Errorf("DStar parallel = %g, want 3", got)
	}
}

func TestDStarClampsToCommonInterval(t *testing.T) {
	// The unconstrained CPA time would be t=10 (where the tracks converge),
	// but the common interval ends at t=4, so the minimum is at t=4.
	a := TimedSeg(Pt(0, 10), Pt(10, 0), 0, 10) // converging toward y=0
	b := TimedSeg(Pt(0, -10), Pt(4, -6), 0, 4) // moving up, ends early
	tc, ok := CPATime(a, b)
	if !ok {
		t.Fatal("expected overlap")
	}
	if tc != 4 {
		t.Errorf("CPATime = %g, want clamp at 4", tc)
	}
	want := D(a.PosAt(4), b.PosAt(4))
	if got := DStar(a, b); !almostEqual(got, want) {
		t.Errorf("DStar = %g, want %g", got, want)
	}
}

func TestDStarStationaryPair(t *testing.T) {
	a := TimedSeg(Pt(0, 0), Pt(0, 0), 0, 10)
	b := TimedSeg(Pt(3, 4), Pt(3, 4), 2, 8)
	if got := DStar(a, b); !almostEqual(got, 5) {
		t.Errorf("DStar stationary = %g, want 5", got)
	}
}

// Property: D* is always ≥ DLL on the underlying spatial segments whenever
// the time intervals overlap (Section 6.2's tightening claim), and both are
// lower bounds on the synchronous distance at any shared time.
func TestPropDStarTightensDLL(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		t0 := r.Float64() * 100
		d0 := r.Float64()*20 + 0.1
		t1 := r.Float64() * 100
		d1 := r.Float64()*20 + 0.1
		a := TimedSeg(boundedPoint(r), boundedPoint(r), t0, t0+d0)
		b := TimedSeg(boundedPoint(r), boundedPoint(r), t1, t1+d1)
		ds := DStar(a, b)
		lo, hi, ok := a.OverlapInterval(b)
		if !ok {
			if !math.IsInf(ds, 1) {
				t.Fatalf("disjoint intervals but DStar=%g", ds)
			}
			continue
		}
		dll := DLL(a.Segment, b.Segment)
		if ds < dll-1e-6 {
			t.Fatalf("DStar=%g below DLL=%g (a=%+v b=%+v)", ds, dll, a, b)
		}
		// DStar is the min over shared times: no sampled time beats it.
		for j := 0; j <= 32; j++ {
			tt := lo + (hi-lo)*float64(j)/32
			if d := D(a.PosAt(tt), b.PosAt(tt)); d < ds-1e-6 {
				t.Fatalf("DStar=%g exceeds synchronous distance %g at t=%g", ds, d, tt)
			}
		}
	}
}
