package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestD(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(-1, -1), Pt(2, 3), 5},
		{Pt(1.5, 2.5), Pt(1.5, 2.5), 0},
		{Pt(0, 0), Pt(1, 0), 1},
		{Pt(0, 0), Pt(0, -2), 2},
	}
	for _, c := range cases {
		if got := D(c.p, c.q); !almostEqual(got, c.want) {
			t.Errorf("D(%v,%v) = %g, want %g", c.p, c.q, got, c.want)
		}
		if got := D2(c.p, c.q); !almostEqual(got, c.want*c.want) {
			t.Errorf("D2(%v,%v) = %g, want %g", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestVectorOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
	if got := Pt(3, 4).Norm(); !almostEqual(got, 5) {
		t.Errorf("Norm = %v", got)
	}
	if got := Pt(3, 4).Norm2(); !almostEqual(got, 25) {
		t.Errorf("Norm2 = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != Pt(2, -1) {
		t.Errorf("Lerp = %v", got)
	}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestDPL(t *testing.T) {
	l := Seg(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 3},        // above the middle: perpendicular distance
		{Pt(-3, 4), 5},       // before A: distance to A
		{Pt(13, 4), 5},       // after B: distance to B
		{Pt(0, 0), 0},        // on endpoint
		{Pt(7, 0), 0},        // on the segment
		{Pt(10, -2), 2},      // below endpoint B
		{Pt(5, -1.25), 1.25}, // below the middle
	}
	for _, c := range cases {
		if got := DPL(c.p, l); !almostEqual(got, c.want) {
			t.Errorf("DPL(%v, %v) = %g, want %g", c.p, l, got, c.want)
		}
	}
}

func TestDPLDegenerateSegment(t *testing.T) {
	l := Seg(Pt(2, 2), Pt(2, 2))
	if got := DPL(Pt(5, 6), l); !almostEqual(got, 5) {
		t.Errorf("DPL to degenerate segment = %g, want 5", got)
	}
	if got := DPLine(Pt(5, 6), l); !almostEqual(got, 5) {
		t.Errorf("DPLine to degenerate segment = %g, want 5", got)
	}
}

func TestDPLine(t *testing.T) {
	l := Seg(Pt(0, 0), Pt(10, 0))
	// DPLine measures distance to the infinite line, so a point past the
	// endpoint still projects perpendicularly.
	if got := DPLine(Pt(15, 3), l); !almostEqual(got, 3) {
		t.Errorf("DPLine = %g, want 3", got)
	}
	if got := DPL(Pt(15, 3), l); !almostEqual(got, math.Hypot(5, 3)) {
		t.Errorf("DPL = %g, want %g", got, math.Hypot(5, 3))
	}
}

func TestDLL(t *testing.T) {
	cases := []struct {
		a, b Segment
		want float64
	}{
		// Parallel horizontal segments, vertical gap 2.
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(0, 2), Pt(10, 2)), 2},
		// Crossing segments.
		{Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0)), 0},
		// Touching at an endpoint.
		{Seg(Pt(0, 0), Pt(5, 5)), Seg(Pt(5, 5), Pt(9, 0)), 0},
		// Collinear, disjoint: gap 3 along the x axis.
		{Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(5, 0), Pt(9, 0)), 3},
		// Collinear, overlapping.
		{Seg(Pt(0, 0), Pt(5, 0)), Seg(Pt(3, 0), Pt(9, 0)), 0},
		// Perpendicular, closest at endpoint-to-interior.
		{Seg(Pt(0, 3), Pt(0, 10)), Seg(Pt(-5, 0), Pt(5, 0)), 3},
		// Degenerate vs segment.
		{Seg(Pt(4, 4), Pt(4, 4)), Seg(Pt(0, 0), Pt(8, 0)), 4},
		// Two degenerate segments.
		{Seg(Pt(0, 0), Pt(0, 0)), Seg(Pt(3, 4), Pt(3, 4)), 5},
	}
	for _, c := range cases {
		if got := DLL(c.a, c.b); !almostEqual(got, c.want) {
			t.Errorf("DLL(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
		}
		// Symmetry.
		if got := DLL(c.b, c.a); !almostEqual(got, c.want) {
			t.Errorf("DLL(%v, %v) = %g, want %g (symmetric)", c.b, c.a, got, c.want)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := RectOf(Pt(1, 2), Pt(5, -3), Pt(3, 7))
	want := Rect{MinX: 1, MinY: -3, MaxX: 5, MaxY: 7}
	if r != want {
		t.Fatalf("RectOf = %v, want %v", r, want)
	}
	if r.IsEmpty() {
		t.Error("non-empty rect reported empty")
	}
	if !EmptyRect().IsEmpty() {
		t.Error("EmptyRect not empty")
	}
	if !r.Contains(Pt(3, 0)) || r.Contains(Pt(0, 0)) {
		t.Error("Contains misbehaves")
	}
	if got := r.Inflate(1); got != (Rect{0, -4, 6, 8}) {
		t.Errorf("Inflate = %v", got)
	}
	if u := EmptyRect().Union(r); u != r {
		t.Errorf("Union with empty = %v", u)
	}
	if u := r.Union(EmptyRect()); u != r {
		t.Errorf("Union with empty (rhs) = %v", u)
	}
	s := RectOf(Pt(10, 10), Pt(12, 12))
	if got := r.Union(s); got != (Rect{1, -3, 12, 12}) {
		t.Errorf("Union = %v", got)
	}
	if r.Intersects(s) {
		t.Error("disjoint rects reported intersecting")
	}
	if !r.Intersects(RectOf(Pt(4, 4), Pt(20, 20))) {
		t.Error("overlapping rects reported disjoint")
	}
	if EmptyRect().Intersects(r) || r.Intersects(EmptyRect()) {
		t.Error("empty rect reported intersecting")
	}
}

func TestDmin(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	cases := []struct {
		b    Rect
		want float64
	}{
		{Rect{1, 1, 3, 3}, 0},                    // overlap
		{Rect{2, 2, 4, 4}, 0},                    // corner touch
		{Rect{5, 0, 7, 2}, 3},                    // gap along x only
		{Rect{0, 6, 2, 8}, 4},                    // gap along y only
		{Rect{5, 6, 7, 8}, 5},                    // diagonal gap (3,4,5)
		{Rect{-4, -3, -3, -2}, math.Hypot(3, 2)}, // diagonal on the other side
	}
	for _, c := range cases {
		if got := Dmin(a, c.b); !almostEqual(got, c.want) {
			t.Errorf("Dmin(%v,%v) = %g, want %g", a, c.b, got, c.want)
		}
		if got := Dmin(c.b, a); !almostEqual(got, c.want) {
			t.Errorf("Dmin symmetric (%v,%v) = %g, want %g", c.b, a, got, c.want)
		}
	}
	if got := Dmin(a, EmptyRect()); !math.IsInf(got, 1) {
		t.Errorf("Dmin with empty rect = %g, want +Inf", got)
	}
}

func TestSegmentHelpers(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	if got := s.Length(); !almostEqual(got, 10) {
		t.Errorf("Length = %g", got)
	}
	if got := s.Midpoint(); got != Pt(5, 0) {
		t.Errorf("Midpoint = %v", got)
	}
	if got := s.At(0.25); got != Pt(2.5, 0) {
		t.Errorf("At = %v", got)
	}
	if got := s.Bounds(); got != (Rect{0, 0, 10, 0}) {
		t.Errorf("Bounds = %v", got)
	}
	if f := s.ClosestFraction(Pt(-5, 3)); f != 0 {
		t.Errorf("ClosestFraction before A = %g", f)
	}
	if f := s.ClosestFraction(Pt(50, 3)); f != 1 {
		t.Errorf("ClosestFraction after B = %g", f)
	}
	if f := s.ClosestFraction(Pt(4, 9)); !almostEqual(f, 0.4) {
		t.Errorf("ClosestFraction interior = %g", f)
	}
}

// --- Property-based tests -------------------------------------------------

// boundedPoint produces points in a modest range so distances stay well
// within float64 precision.
func boundedPoint(r *rand.Rand) Point {
	return Pt(r.Float64()*2000-1000, r.Float64()*2000-1000)
}

func TestPropDistanceMetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		if !almostEqual(D(a, b), D(b, a)) {
			return false
		}
		if D(a, a) != 0 {
			return false
		}
		return D(a, c) <= D(a, b)+D(b, c)+eps*(1+D(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestPropDPLIsMinOverSamples(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		p := boundedPoint(r)
		l := Seg(boundedPoint(r), boundedPoint(r))
		got := DPL(p, l)
		if got < 0 {
			t.Fatalf("negative distance")
		}
		// DPL lower-bounds the distance to any sampled point on the segment,
		// and the densely sampled minimum comes close to it.
		minSample := math.Inf(1)
		for f := 0.0; f <= 1.0; f += 1.0 / 256 {
			d := D(p, l.At(f))
			if d < got-1e-6 {
				t.Fatalf("DPL=%g exceeds sample distance %g for p=%v l=%v", got, d, p, l)
			}
			if d < minSample {
				minSample = d
			}
		}
		if got < minSample-l.Length()/128 {
			t.Fatalf("DPL=%g implausibly below sampled min %g", got, minSample)
		}
	}
}

func TestPropDLLLowerBoundsPointPairs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		lu := Seg(boundedPoint(r), boundedPoint(r))
		lv := Seg(boundedPoint(r), boundedPoint(r))
		dll := DLL(lu, lv)
		for j := 0; j < 16; j++ {
			a := lu.At(r.Float64())
			b := lv.At(r.Float64())
			if d := D(a, b); d < dll-1e-6 {
				t.Fatalf("DLL=%g exceeds point pair distance %g (lu=%v lv=%v)", dll, d, lu, lv)
			}
		}
		// Endpoint distances are attainable, so DLL is at most the min of them.
		endpointMin := math.Min(
			math.Min(D(lu.A, lv.A), D(lu.A, lv.B)),
			math.Min(D(lu.B, lv.A), D(lu.B, lv.B)),
		)
		if dll > endpointMin+1e-9 {
			t.Fatalf("DLL=%g exceeds endpoint minimum %g", dll, endpointMin)
		}
	}
}

func TestPropDminLowerBoundsDLL(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		lu := Seg(boundedPoint(r), boundedPoint(r))
		lv := Seg(boundedPoint(r), boundedPoint(r))
		dmin := Dmin(lu.Bounds(), lv.Bounds())
		if dll := DLL(lu, lv); dmin > dll+1e-9 {
			t.Fatalf("Dmin=%g exceeds DLL=%g (lu=%v lv=%v)", dmin, dll, lu, lv)
		}
	}
}

func TestPropRectUnionMonotone(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		u := RectOf(a, b).Union(RectOf(c))
		return u.Contains(a) && u.Contains(b) && u.Contains(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}
