package geom

import "math"

// TimedSegment is a line segment whose endpoints carry timestamps: the
// moving point is at A at time T0 and at B at time T1, moving linearly in
// between. Simplified trajectory segments produced by DP* are interpreted
// this way (Section 6.2). T0 ≤ T1 is required; T0 == T1 denotes a stationary
// single-instant segment positioned at A.
type TimedSegment struct {
	Segment
	T0, T1 float64
}

// TimedSeg constructs a TimedSegment.
func TimedSeg(a, b Point, t0, t1 float64) TimedSegment {
	return TimedSegment{Segment: Segment{A: a, B: b}, T0: t0, T1: t1}
}

// PosAt returns the interpolated position of the moving point at time t:
//
//	l'(t) = p_u + (t−u)/(v−u) · (p_v − p_u)
//
// t is not clamped to [T0,T1]; callers restrict t to the segment's interval.
// A zero-duration segment is stationary at A.
func (ts TimedSegment) PosAt(t float64) Point {
	if ts.T1 == ts.T0 {
		return ts.A
	}
	f := (t - ts.T0) / (ts.T1 - ts.T0)
	return ts.A.Lerp(ts.B, f)
}

// Velocity returns the constant velocity vector of the moving point in
// spatial units per time unit. Zero-duration segments have zero velocity.
func (ts TimedSegment) Velocity() Point {
	if ts.T1 == ts.T0 {
		return Point{}
	}
	return ts.B.Sub(ts.A).Scale(1 / (ts.T1 - ts.T0))
}

// OverlapInterval returns the intersection of the two segments' time
// intervals and whether it is non-empty.
func (ts TimedSegment) OverlapInterval(other TimedSegment) (lo, hi float64, ok bool) {
	lo = math.Max(ts.T0, other.T0)
	hi = math.Min(ts.T1, other.T1)
	return lo, hi, lo <= hi
}

// CPATime returns the Closest-Point-of-Approach time of the two moving
// points, clamped to the common time interval of the segments. The second
// return value is false when the time intervals do not intersect (the paper
// defines D* = ∞ in that case).
//
// Within the common interval the squared distance between the two moving
// points is a quadratic in t, so the unconstrained minimiser is
//
//	tCPA = −(w0 · dv) / |dv|²
//
// where w0 is the relative position at t = 0 and dv the relative velocity;
// with dv = 0 the distance is constant and any time in the interval attains
// the minimum (lo is returned).
func CPATime(u, v TimedSegment) (t float64, ok bool) {
	lo, hi, ok := u.OverlapInterval(v)
	if !ok {
		return 0, false
	}
	vu, vv := u.Velocity(), v.Velocity()
	dv := vu.Sub(vv)
	den := dv.Norm2()
	if den == 0 {
		return lo, true
	}
	// Relative position at absolute time 0.
	w0 := u.A.Sub(vu.Scale(u.T0)).Sub(v.A.Sub(vv.Scale(v.T0)))
	t = -w0.Dot(dv) / den
	if t < lo {
		t = lo
	} else if t > hi {
		t = hi
	}
	return t, true
}

// DStar returns the tightened synchronous distance between two timed
// segments (Section 6.2):
//
//	D*(l'1, l'2) = D(l'1(tCPA), l'2(tCPA)),  tCPA ∈ l'1.τ ∩ l'2.τ
//
// and +Inf when the time intervals do not intersect. DStar is always ≥ DLL
// of the underlying spatial segments because it compares positions at the
// same instant rather than the closest pair across all of space.
func DStar(u, v TimedSegment) float64 {
	t, ok := CPATime(u, v)
	if !ok {
		return math.Inf(1)
	}
	return D(u.PosAt(t), v.PosAt(t))
}
