// Package loadgen drives a live convoyd server over HTTP with scripted
// traffic shapes and reports what both sides measured: client-observed
// latency percentiles per operation, the server's own /metrics counters
// (convoyd_* plus go_* runtime gauges) scraped after the run, and the
// per-stage profile of one sampled explain=true query. The cmd/convoyload
// CLI and the expr "soak" experiment are thin wrappers around Run.
//
// Two pacing modes:
//
//   - closed loop (Rate == 0): Concurrency workers issue requests
//     back-to-back, each waiting for its response before the next — the
//     "as fast as the server allows" shape that measures capacity.
//   - open loop (Rate > 0): requests start on a fixed schedule of Rate
//     per second regardless of completions — the arrival-driven shape
//     that measures behavior under a traffic level the server does not
//     control. Iterations are spread round-robin over Concurrency
//     serialized worker states; when more than Concurrency*64 requests
//     are in flight the tick is dropped (and counted) rather than queued
//     without bound.
//
// The report's request count is exact: the run window gates *starting*
// an iteration, in-flight requests always complete, and nothing in a
// scenario aborts a request client-side. Against a fresh server this
// makes Report.Requests equal the scraped convoyd_http_requests_total —
// the invariant the end-to-end test (and Report.ServerMatch) checks.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// Options configure one load run.
type Options struct {
	// BaseURL is the convoyd API root (no trailing slash), e.g.
	// "http://127.0.0.1:8764".
	BaseURL string
	// MetricsURL is the exposition to scrape after the run. Empty means
	// BaseURL+"/metrics"; "-" disables scraping.
	MetricsURL string
	// Scenario picks the traffic shape; see Scenarios.
	Scenario string
	// Duration is the load window (default 2s). Setup requests and the
	// completion of in-flight requests fall outside it.
	Duration time.Duration
	// Concurrency is the number of closed-loop workers, and the number of
	// serialized worker states in open loop. Default 4.
	Concurrency int
	// Rate > 0 switches to open loop at this many requests/second.
	Rate float64
	// Seed drives the deterministic payload generation. Default 1.
	Seed int64
	// Scale multiplies payload sizes (database sizes, tick batch sizes);
	// 1 is the CLI default, the soak experiment passes its own.
	Scale float64
	// Client overrides the HTTP client (default: http.Client with no
	// timeout — scenarios rely on server-side deadlines).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.MetricsURL == "" {
		o.MetricsURL = o.BaseURL + "/metrics"
	}
	return o
}

// OpReport is one operation's client-side view.
type OpReport struct {
	Op       string  `json:"op"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	MeanMS   float64 `json:"mean_ms"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// Report is the outcome of one load run.
type Report struct {
	Scenario    string  `json:"scenario"`
	Mode        string  `json:"mode"` // "closed" or "open"
	Concurrency int     `json:"concurrency"`
	RateHz      float64 `json:"rate_hz,omitempty"`
	DurationMS  float64 `json:"duration_ms"`
	// Requests counts every HTTP request the generator issued, setup
	// included; Errors the transport-level failures among them.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Dropped counts open-loop ticks skipped because the in-flight cap
	// was reached (always 0 in closed loop).
	Dropped       int64            `json:"dropped,omitempty"`
	ThroughputRPS float64          `json:"throughput_rps"`
	MeanMS        float64          `json:"mean_ms"`
	P50MS         float64          `json:"p50_ms"`
	P95MS         float64          `json:"p95_ms"`
	P99MS         float64          `json:"p99_ms"`
	Ops           []OpReport       `json:"ops"`
	Status        map[string]int64 `json:"status"`
	// ServerRequests is the scraped sum of convoyd_http_requests_total;
	// ServerMatch reports whether it equals Requests (the generator's own
	// accounting), the end-to-end consistency check. Both are zero/false
	// when scraping is disabled.
	ServerRequests int64 `json:"server_requests"`
	ServerMatch    bool  `json:"server_match"`
	// Server holds scraped family sums of interest (queries, ticks,
	// events, clustering passes actual/naive, computes, go_* runtime
	// gauges).
	Server map[string]float64 `json:"server,omitempty"`
	// ServerError explains a degraded server-side view — the target
	// predates /v1/stats, or the scrape failed — instead of presenting
	// zeroed counters as a silent mismatch.
	ServerError string `json:"server_error,omitempty"`
	// Explain is the per-stage timing profile of one sampled
	// explain=true query issued after the load window (nil when the
	// sample failed or the server predates explain).
	Explain *serve.ExplainJSON `json:"explain,omitempty"`
}

// msBuckets are latency buckets in milliseconds for the client-side view.
var msBuckets = []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// opAgg aggregates one operation's latencies client-side.
type opAgg struct {
	h            *metrics.Histogram
	count, fails atomic.Int64
}

// client is the shared measuring HTTP client: every request any scenario
// issues goes through do, so the total count is authoritative.
type client struct {
	base string
	hc   *http.Client

	overall *metrics.Histogram
	total   atomic.Int64
	errs    atomic.Int64

	mu     sync.Mutex
	ops    map[string]*opAgg
	order  []string
	status map[int]int64
}

func newClient(o Options) *client {
	return &client{
		base:    o.BaseURL,
		hc:      o.Client,
		overall: metrics.NewHistogram(msBuckets),
		ops:     make(map[string]*opAgg),
		status:  make(map[int]int64),
	}
}

func (c *client) op(name string) *opAgg {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.ops[name]
	if !ok {
		a = &opAgg{h: metrics.NewHistogram(msBuckets)}
		c.ops[name] = a
		c.order = append(c.order, name)
	}
	return a
}

// do issues one measured request. The response body is drained and
// closed; the status code is returned (0 on transport error). Transport
// errors are counted, HTTP error statuses are not — a 4xx/5xx answer is
// the server working as told (the Status map keeps the breakdown).
func (c *client) do(ctx context.Context, op, method, path, contentType string, body []byte) (int, error) {
	code, _, err := c.roundTrip(ctx, op, method, path, contentType, body, false)
	return code, err
}

// doRead is do for the callers that need the response payload (the
// explain sample); measured and counted identically.
func (c *client) doRead(ctx context.Context, op, method, path, contentType string, body []byte) ([]byte, int, error) {
	code, data, err := c.roundTrip(ctx, op, method, path, contentType, body, true)
	return data, code, err
}

func (c *client) roundTrip(ctx context.Context, op, method, path, contentType string, body []byte, keep bool) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	a := c.op(op)
	t0 := time.Now()
	resp, err := c.hc.Do(req)
	elapsed := float64(time.Since(t0).Microseconds()) / 1000
	c.total.Add(1)
	a.count.Add(1)
	a.h.Observe(elapsed)
	c.overall.Observe(elapsed)
	if err != nil {
		c.errs.Add(1)
		a.fails.Add(1)
		return 0, nil, err
	}
	var data []byte
	if keep {
		data, _ = io.ReadAll(resp.Body)
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	resp.Body.Close()
	c.mu.Lock()
	c.status[resp.StatusCode]++
	c.mu.Unlock()
	return resp.StatusCode, data, nil
}

// Run executes one scenario against the target and builds the report.
// The context cancels the whole run (aborting in-flight requests — the
// only path on which the request accounting can go out of sync with the
// server's).
func Run(ctx context.Context, o Options) (Report, error) {
	o = o.withDefaults()
	sc, ok := scenarios[o.Scenario]
	if !ok {
		return Report{}, fmt.Errorf("loadgen: unknown scenario %q (have %v)", o.Scenario, ScenarioNames())
	}
	c := newClient(o)
	if err := sc.setup(ctx, c, o); err != nil {
		return Report{}, fmt.Errorf("loadgen: %s setup: %w", o.Scenario, err)
	}

	steps := make([]func(context.Context, int), o.Concurrency)
	for w := range steps {
		steps[w] = sc.worker(c, w, o)
	}

	t0 := time.Now()
	deadline := t0.Add(o.Duration)
	var dropped int64
	if o.Rate > 0 {
		dropped = runOpen(ctx, o, steps, deadline)
	} else {
		runClosed(ctx, o, steps, deadline)
	}
	elapsed := time.Since(t0)

	// Post-window samples, issued before the totals are read so the
	// request accounting stays exact on both sides: one explain=true
	// query whose stage profile rides in the report, and a /v1/stats
	// probe gating the server-side counter view.
	explain := sampleExplain(ctx, c, o)
	var statsCode int
	var statsErr error
	if o.MetricsURL != "-" {
		statsCode, statsErr = c.do(ctx, "stats_probe", "GET", "/v1/stats", "", nil)
	}

	rep := Report{
		Scenario:    o.Scenario,
		Mode:        "closed",
		Concurrency: o.Concurrency,
		RateHz:      o.Rate,
		DurationMS:  float64(elapsed.Microseconds()) / 1000,
		Requests:    c.total.Load(),
		Errors:      c.errs.Load(),
		Dropped:     dropped,
		MeanMS:      mean(c.overall),
		P50MS:       c.overall.Quantile(0.50),
		P95MS:       c.overall.Quantile(0.95),
		P99MS:       c.overall.Quantile(0.99),
		Status:      map[string]int64{},
	}
	if o.Rate > 0 {
		rep.Mode = "open"
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / secs
	}
	c.mu.Lock()
	for code, n := range c.status {
		rep.Status[strconv.Itoa(code)] = n
	}
	order := append([]string(nil), c.order...)
	c.mu.Unlock()
	sort.Strings(order)
	for _, name := range order {
		a := c.op(name)
		rep.Ops = append(rep.Ops, OpReport{
			Op:       name,
			Requests: a.count.Load(),
			Errors:   a.fails.Load(),
			MeanMS:   mean(a.h),
			P50MS:    a.h.Quantile(0.50),
			P95MS:    a.h.Quantile(0.95),
			P99MS:    a.h.Quantile(0.99),
		})
	}
	rep.Explain = explain
	if o.MetricsURL != "-" {
		switch {
		case statsErr != nil:
			rep.ServerError = fmt.Sprintf("probe /v1/stats: %v", statsErr)
		case statsCode != http.StatusOK:
			rep.ServerError = fmt.Sprintf("server answered %d to GET /v1/stats (predates the stats API?); server-side counters unavailable", statsCode)
		default:
			if err := scrapeInto(ctx, o, &rep); err != nil {
				rep.ServerError = fmt.Sprintf("scrape %s: %v", o.MetricsURL, err)
			}
		}
	}
	return rep, nil
}

// sampleExplain issues one explain=true query against a small synthetic
// database and returns its stage profile — every report carries one
// per-stage view of the server's query pipeline. A failed sample (old
// server, transport error) degrades to nil, never to a failed run.
func sampleExplain(ctx context.Context, c *client, o Options) *serve.ExplainJSON {
	db := synthCSV(scaled(8, o.Scale, 6, 24), scaled(20, o.Scale, 12, 60), o.Seed)
	data, code, err := c.doRead(ctx, "explain_sample", "POST",
		"/v1/query?m=3&k=4&e=1.5&algo=cmc&explain=true", "text/csv", db)
	if err != nil || code != http.StatusOK {
		return nil
	}
	var qr serve.QueryResponse
	if json.Unmarshal(data, &qr) != nil {
		return nil
	}
	return qr.Explain
}

// runClosed: each worker issues iterations back-to-back until the window
// ends; in-flight requests complete past the deadline.
func runClosed(ctx context.Context, o Options, steps []func(context.Context, int), deadline time.Time) {
	var wg sync.WaitGroup
	for w := range steps {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline) && ctx.Err() == nil; i++ {
				steps[w](ctx, i)
			}
		}(w)
	}
	wg.Wait()
}

// runOpen: a ticker starts iterations at the configured rate, fanned over
// the serialized worker states round-robin; the in-flight cap sheds load
// instead of queueing it. Returns the dropped-tick count.
func runOpen(ctx context.Context, o Options, steps []func(context.Context, int), deadline time.Time) int64 {
	interval := time.Duration(float64(time.Second) / o.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	// The window must end even when the next tick lies beyond it (a rate
	// below 1/Duration): waiting on the ticker alone would overshoot.
	windowEnd := time.NewTimer(time.Until(deadline))
	defer windowEnd.Stop()
	locks := make([]sync.Mutex, len(steps))
	inflight := make(chan struct{}, len(steps)*64)
	var wg sync.WaitGroup
	var dropped int64
	for i := 0; time.Now().Before(deadline) && ctx.Err() == nil; i++ {
		select {
		case <-ticker.C:
		case <-windowEnd.C:
			wg.Wait()
			return dropped
		case <-ctx.Done():
			wg.Wait()
			return dropped
		}
		select {
		case inflight <- struct{}{}:
		default:
			dropped++
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-inflight }()
			w := i % len(steps)
			locks[w].Lock()
			defer locks[w].Unlock()
			steps[w](ctx, i)
		}(i)
	}
	wg.Wait()
	return dropped
}

// scrapedFamilies are the server counters echoed into Report.Server.
var scrapedFamilies = []string{
	"convoyd_http_requests_total",
	"convoyd_queries_total",
	"convoyd_query_computes_total",
	"convoyd_feed_ticks_total",
	"convoyd_feed_events_total",
	"convoyd_feed_cluster_passes_total",
	"convoyd_feed_cluster_passes_naive_total",
	"convoyd_feeds_created_total",
	"convoyd_feeds_evicted_total",
	"convoyd_monitors",
	"go_goroutines",
	"go_gomaxprocs",
	"go_heap_alloc_bytes",
	"go_gc_pause_seconds_total",
}

// scrapeInto reads the server's /metrics and fills the report's server
// view. The middleware records a request after its handler returns — an
// instant after the client saw the response — so the scrape retries
// briefly until the server's count catches up with ours (it can only
// trail, never lead).
func scrapeInto(ctx context.Context, o Options, rep *Report) error {
	var samples map[string]float64
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, o.MetricsURL, nil)
		if err != nil {
			return err
		}
		resp, err := o.Client.Do(req)
		if err != nil {
			return err
		}
		samples, err = metrics.ParseText(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		rep.ServerRequests = int64(metrics.Sum(samples, "convoyd_http_requests_total"))
		if rep.ServerRequests >= rep.Requests || attempt >= 20 || ctx.Err() != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep.ServerMatch = rep.ServerRequests == rep.Requests
	rep.Server = make(map[string]float64, len(scrapedFamilies))
	for _, fam := range scrapedFamilies {
		rep.Server[fam] = metrics.Sum(samples, fam)
	}
	return nil
}

func mean(h *metrics.Histogram) float64 {
	if h.Count() == 0 {
		return 0
	}
	return h.Sum() / float64(h.Count())
}

// seededRand builds a deterministic per-worker RNG.
func seededRand(seed int64, worker int) *rand.Rand {
	return rand.New(rand.NewSource(seed*7919 + int64(worker)))
}
