package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/url"
	"sort"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/tsio"
)

// A scenario is one traffic shape. setup runs once (its requests are
// counted like any other); worker returns worker id's step function —
// the runner guarantees one step function is never called concurrently
// with itself, so steps may keep per-worker state (tick counters, local
// RNGs) without locking.
type scenario struct {
	desc   string
	setup  func(ctx context.Context, c *client, o Options) error
	worker func(c *client, id int, o Options) func(ctx context.Context, i int)
}

// scenarios is the preset table, keyed by name.
var scenarios = map[string]*scenario{
	"batch":   batchScenario,
	"monitor": monitorScenario,
	"mixed":   mixedScenario,
	"churn":   churnScenario,
	"cancel":  cancelScenario,
}

// ScenarioNames lists the presets, sorted.
func ScenarioNames() []string {
	out := make([]string, 0, len(scenarios))
	for name := range scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ScenarioDesc describes one preset ("" for unknown names).
func ScenarioDesc(name string) string {
	if sc, ok := scenarios[name]; ok {
		return sc.desc
	}
	return ""
}

// --- payload helpers -------------------------------------------------

// synthCSV builds a deterministic CSV database of nObj objects over
// nTicks ticks: objects travel in loose bands so small-e queries find
// real convoys and the discovery run does nontrivial work.
func synthCSV(nObj, nTicks int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	db := model.NewDB()
	for o := 0; o < nObj; o++ {
		y := float64(o) * 0.7
		x := r.Float64() * 2
		samples := make([]model.Sample, 0, nTicks)
		for t := 0; t < nTicks; t++ {
			x += 0.8 + r.Float64()*0.4
			y += (r.Float64() - 0.5) * 0.2
			samples = append(samples, model.Sample{T: model.Tick(t), P: geom.Pt(x, y)})
		}
		tr, err := model.NewTrajectory(fmt.Sprintf("o%d", o), samples)
		if err != nil {
			panic(err) // deterministic generator; cannot happen
		}
		db.Add(tr)
	}
	var buf bytes.Buffer
	if err := tsio.WriteCSV(&buf, db); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// scaled maps the option scale onto an integer size within [lo, hi].
func scaled(base int, scale float64, lo, hi int) int {
	n := int(float64(base) * scale)
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

// jsonBody marshals a request body, panicking on the impossible.
func jsonBody(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}

// tickBody builds one tick batch of n objects walking in two bands.
func tickBody(t int64, n int, r *rand.Rand) []byte {
	pos := make([]serve.Position, n)
	for i := range pos {
		band := float64(i%2) * 40
		pos[i] = serve.Position{
			ID: fmt.Sprintf("v%d", i),
			X:  float64(t) + r.Float64()*0.3,
			Y:  band + float64(i/2)*0.6,
		}
	}
	return jsonBody(serve.TicksRequest{Ticks: []serve.TickBatch{{T: t, Positions: pos}}})
}

// --- batch-heavy -----------------------------------------------------

// batchQuerySet is the rotation of (database, parameter) combinations a
// batch-heavy worker cycles through; repeats hit the result cache, the
// algo mix exercises both engines.
type batchQuerySet struct {
	dbs   [][]byte
	algos []string
}

func newBatchQuerySet(o Options) *batchQuerySet {
	ticks := scaled(60, o.Scale, 12, 600)
	objs := scaled(12, o.Scale, 6, 60)
	set := &batchQuerySet{algos: []string{"cuts*", "cmc", "cuts+"}}
	for i := int64(0); i < 3; i++ {
		set.dbs = append(set.dbs, synthCSV(objs, ticks, o.Seed+i))
	}
	return set
}

func (s *batchQuerySet) step(ctx context.Context, c *client, i int) {
	db := s.dbs[i%len(s.dbs)]
	algo := s.algos[(i/len(s.dbs))%len(s.algos)]
	// QueryEscape matters: a raw "cuts+" in a query string decodes as
	// "cuts " and the server rejects it.
	path := "/v1/query?m=3&k=4&e=1.5&algo=" + url.QueryEscape(algo)
	_, _ = c.do(ctx, "query", "POST", path, "text/csv", db)
}

var batchScenario = &scenario{
	desc: "batch-query firehose: rotating uploads and algorithms, cache hits and misses mixed",
	setup: func(ctx context.Context, c *client, o Options) error {
		return nil
	},
	worker: func(c *client, id int, o Options) func(context.Context, int) {
		set := newBatchQuerySet(o)
		return func(ctx context.Context, i int) { set.step(ctx, c, i) }
	},
}

// --- monitor-heavy ---------------------------------------------------

// monitorScenario: one feed with a deep monitor table across a few
// distinct clustering keys; worker 0 ingests ticks, the others poll
// convoys, statuses and the monitor table — the standing-query dashboard
// shape.
var monitorScenario = &scenario{
	desc: "standing-query fan-out: one ingesting tracker plus dashboard pollers over a deep monitor table",
	setup: func(ctx context.Context, c *client, o Options) error {
		if _, err := c.do(ctx, "feed_create", "POST", "/v1/feeds", "application/json",
			jsonBody(serve.FeedSpec{Name: "load-mon", Params: serve.ParamsJSON{M: 2, K: 3, Eps: 1}})); err != nil {
			return err
		}
		// 9 extra monitors over 3 distinct keys: shared clustering must
		// keep per-tick cost at 3 passes, not 10.
		for i := 0; i < 9; i++ {
			spec := serve.MonitorSpec{
				ID: fmt.Sprintf("mon-%d", i),
				Params: serve.ParamsJSON{
					M:   2 + i%3, // three distinct (e, m) keys
					K:   int64(3 + i),
					Eps: 1,
				},
			}
			if _, err := c.do(ctx, "monitor_add", "POST", "/v1/feeds/load-mon/monitors", "application/json", jsonBody(spec)); err != nil {
				return err
			}
		}
		return nil
	},
	worker: func(c *client, id int, o Options) func(context.Context, int) {
		r := seededRand(o.Seed, id)
		objs := scaled(24, o.Scale, 8, 200)
		var tick int64
		return func(ctx context.Context, i int) {
			if id == 0 {
				_, _ = c.do(ctx, "ticks", "POST", "/v1/feeds/load-mon/ticks", "application/json", tickBody(tick, objs, r))
				tick++
				return
			}
			switch i % 3 {
			case 0:
				_, _ = c.do(ctx, "poll", "GET", "/v1/feeds/load-mon/convoys", "", nil)
			case 1:
				_, _ = c.do(ctx, "feed_status", "GET", "/v1/feeds/load-mon", "", nil)
			default:
				_, _ = c.do(ctx, "monitors_list", "GET", "/v1/feeds/load-mon/monitors", "", nil)
			}
		}
	},
}

// --- mixed ingest+query ----------------------------------------------

// mixedScenario is the acceptance shape: every worker owns a feed it
// ingests into and polls, interleaved with batch queries that mix cache
// hits and misses. No streaming tails, no client-side aborts — the
// request accounting stays exact.
var mixedScenario = &scenario{
	desc: "mixed ingest+query: per-worker feeds with interleaved ticks, polls, statuses and batch queries",
	setup: func(ctx context.Context, c *client, o Options) error {
		return nil
	},
	worker: func(c *client, id int, o Options) func(context.Context, int) {
		r := seededRand(o.Seed, id)
		feed := fmt.Sprintf("mix-%d", id)
		set := newBatchQuerySet(o)
		objs := scaled(16, o.Scale, 6, 120)
		var tick int64
		created := false
		return func(ctx context.Context, i int) {
			if !created {
				_, err := c.do(ctx, "feed_create", "POST", "/v1/feeds", "application/json",
					jsonBody(serve.FeedSpec{Name: feed, Params: serve.ParamsJSON{M: 2, K: 4, Eps: 1}}))
				created = err == nil
				return
			}
			switch i % 6 {
			case 0, 1, 2:
				_, _ = c.do(ctx, "ticks", "POST", "/v1/feeds/"+feed+"/ticks", "application/json", tickBody(tick, objs, r))
				tick++
			case 3:
				_, _ = c.do(ctx, "poll", "GET", "/v1/feeds/"+feed+"/convoys", "", nil)
			case 4:
				set.step(ctx, c, i)
			default:
				_, _ = c.do(ctx, "feed_status", "GET", "/v1/feeds/"+feed, "", nil)
			}
		}
	},
}

// --- feed churn ------------------------------------------------------

// churnScenario stresses the registry: create a feed, ingest a couple of
// ticks, delete it, repeat — the lifecycle path (and its drain logic)
// under load.
var churnScenario = &scenario{
	desc: "feed churn: create → ingest → delete cycles hammering the registry and drain paths",
	setup: func(ctx context.Context, c *client, o Options) error {
		return nil
	},
	worker: func(c *client, id int, o Options) func(context.Context, int) {
		r := seededRand(o.Seed, id)
		objs := scaled(8, o.Scale, 4, 60)
		return func(ctx context.Context, i int) {
			feed := fmt.Sprintf("churn-%d-%d", id, i)
			if _, err := c.do(ctx, "feed_create", "POST", "/v1/feeds", "application/json",
				jsonBody(serve.FeedSpec{Name: feed, Params: serve.ParamsJSON{M: 2, K: 2, Eps: 1}})); err != nil {
				return
			}
			for t := int64(0); t < 2; t++ {
				_, _ = c.do(ctx, "ticks", "POST", "/v1/feeds/"+feed+"/ticks", "application/json", tickBody(t, objs, r))
			}
			_, _ = c.do(ctx, "feed_delete", "DELETE", "/v1/feeds/"+feed, "", nil)
		}
	},
}

// --- cancel storm ----------------------------------------------------

// cancelScenario floods the query engine with server-side deadlines most
// runs cannot meet: the timeout path (504, aborted discovery, freed
// slots) under pressure, with a trickle of deadline-free queries proving
// the pool still serves real work. Deadlines are enforced by the server
// (timeout_ms), never by aborting client-side, so request accounting
// stays exact.
var cancelScenario = &scenario{
	desc: "cancel storm: tiny timeout_ms deadlines forcing mid-run aborts, plus a trickle of real queries",
	setup: func(ctx context.Context, c *client, o Options) error {
		return nil
	},
	worker: func(c *client, id int, o Options) func(context.Context, int) {
		// A heavier database than batch-heavy's, so the tiny deadlines
		// genuinely interrupt clustering work.
		ticks := scaled(200, o.Scale, 40, 2000)
		objs := scaled(24, o.Scale, 12, 120)
		db := synthCSV(objs, ticks, o.Seed+int64(id))
		timeouts := []string{"0.05", "0.2", "1"}
		return func(ctx context.Context, i int) {
			if i%4 == 3 {
				// The trickle: no deadline, same database — this compute can
				// land in the cache and later storms hit it.
				_, _ = c.do(ctx, "query_ok", "POST", "/v1/query?m=3&k=4&e=1.5", "text/csv", db)
				return
			}
			path := "/v1/query?m=3&k=4&e=1.5&timeout_ms=" + timeouts[i%len(timeouts)]
			_, _ = c.do(ctx, "query_storm", "POST", path, "text/csv", db)
		}
	},
}
