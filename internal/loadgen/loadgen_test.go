package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// newTarget hosts a fresh convoyd server with /metrics mounted next to
// the API — the same layout cmd/convoyd serves.
func newTarget(t *testing.T, cfg serve.Config) (*serve.Server, string) {
	t.Helper()
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	srv := serve.New(cfg)
	mux := http.NewServeMux()
	mux.Handle("/v1/", srv)
	mux.Handle("GET /metrics", reg.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts.URL
}

// TestMixedScenarioMatchesServerCounters is the acceptance property: the
// report's request count equals the convoyd_http_requests_total the
// generator scraped from the server it loaded.
func TestMixedScenarioMatchesServerCounters(t *testing.T) {
	srv, url := newTarget(t, serve.Config{})
	rep, err := Run(context.Background(), Options{
		BaseURL:     url,
		Scenario:    "mixed",
		Duration:    400 * time.Millisecond,
		Concurrency: 3,
		Scale:       0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if rep.Errors != 0 {
		t.Errorf("transport errors = %d, want 0", rep.Errors)
	}
	if !rep.ServerMatch {
		t.Errorf("request accounting mismatch: client %d, server %d", rep.Requests, rep.ServerRequests)
	}
	if rep.ServerRequests != rep.Requests {
		t.Errorf("ServerRequests = %d, want %d", rep.ServerRequests, rep.Requests)
	}
	// The snapshot agrees with the scraped view on ingestion volume.
	snap := srv.Snapshot()
	if got := rep.Server["convoyd_feed_ticks_total"]; int64(got) != snap.Ticks {
		t.Errorf("scraped ticks %g != snapshot ticks %d", got, snap.Ticks)
	}
	if rep.Status["200"] == 0 {
		t.Errorf("no 200s in status map: %v", rep.Status)
	}
	if rep.Status["400"] != 0 {
		t.Errorf("mixed scenario produced %d bad requests: %v", rep.Status["400"], rep.Status)
	}
	// Every op the scenario defines shows up with consistent counts.
	var opSum int64
	for _, op := range rep.Ops {
		opSum += op.Requests
		if op.Requests > 0 && op.P50MS <= 0 {
			t.Errorf("op %s: p50 = %g, want > 0", op.Op, op.P50MS)
		}
	}
	if opSum != rep.Requests {
		t.Errorf("op counts sum to %d, want %d", opSum, rep.Requests)
	}
	if rep.Mode != "closed" || rep.ThroughputRPS <= 0 {
		t.Errorf("mode/throughput = %s/%g", rep.Mode, rep.ThroughputRPS)
	}
	// The report carries one sampled query profile and the runtime gauges.
	if rep.ServerError != "" {
		t.Errorf("ServerError = %q, want none", rep.ServerError)
	}
	if rep.Explain == nil || len(rep.Explain.Stages) == 0 {
		t.Errorf("no explain sample in report: %+v", rep.Explain)
	} else if rep.Explain.Stages[0].Name != "scan" {
		t.Errorf("explain sample stages = %+v, want the cmc scan", rep.Explain.Stages)
	}
	if rep.Server["go_goroutines"] <= 0 {
		t.Errorf("no go_goroutines gauge in scraped view: %v", rep.Server)
	}
}

// TestStatsProbeDegradesGracefully pins the old-server path: a target
// without /v1/stats yields a report with a clear ServerError instead of
// zeroed counters masquerading as a mismatch.
func TestStatsProbeDegradesGracefully(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := serve.New(serve.Config{Metrics: reg})
	mux := http.NewServeMux()
	mux.Handle("/v1/", srv)
	mux.Handle("GET /v1/stats", http.NotFoundHandler()) // the pre-stats generation
	mux.Handle("GET /metrics", reg.Handler())
	ts := httptest.NewServer(mux)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	rep, err := Run(context.Background(), Options{
		BaseURL:     ts.URL,
		Scenario:    "batch",
		Duration:    100 * time.Millisecond,
		Concurrency: 1,
		Scale:       0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.ServerError, "/v1/stats") {
		t.Errorf("ServerError = %q, want a /v1/stats explanation", rep.ServerError)
	}
	if rep.ServerMatch || rep.ServerRequests != 0 {
		t.Errorf("degraded report still claims a server view: match=%v requests=%d", rep.ServerMatch, rep.ServerRequests)
	}
	if rep.Requests == 0 {
		t.Error("no requests issued")
	}
}

// TestChurnScenarioDrivesRegistry checks a second preset end to end and
// the registry lifecycle counters it is meant to exercise.
func TestChurnScenarioDrivesRegistry(t *testing.T) {
	srv, url := newTarget(t, serve.Config{})
	rep, err := Run(context.Background(), Options{
		BaseURL:     url,
		Scenario:    "churn",
		Duration:    200 * time.Millisecond,
		Concurrency: 2,
		Scale:       0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ServerMatch {
		t.Errorf("request accounting mismatch: client %d, server %d", rep.Requests, rep.ServerRequests)
	}
	snap := srv.Snapshot()
	if snap.FeedsCreated == 0 || snap.FeedsDeleted == 0 {
		t.Errorf("churn left no lifecycle trace: %+v", snap)
	}
	if snap.Feeds != 0 {
		t.Errorf("churn leaked %d feeds", snap.Feeds)
	}
}

// TestCancelStormTimesOut checks the cancel preset produces server-side
// 504s (aborted discoveries) without any client-side aborts.
func TestCancelStormTimesOut(t *testing.T) {
	srv, url := newTarget(t, serve.Config{})
	rep, err := Run(context.Background(), Options{
		BaseURL:     url,
		Scenario:    "cancel",
		Duration:    300 * time.Millisecond,
		Concurrency: 2,
		Scale:       0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("transport errors = %d, want 0 (deadlines are server-side)", rep.Errors)
	}
	if !rep.ServerMatch {
		t.Errorf("request accounting mismatch: client %d, server %d", rep.Requests, rep.ServerRequests)
	}
	if rep.Status["504"] == 0 {
		t.Errorf("no 504s under the storm: %v", rep.Status)
	}
	if got := srv.Snapshot().QueriesTimedOut; got == 0 {
		t.Error("snapshot shows no timed-out queries")
	}
}

// TestOpenLoopMode drives the monitor preset at a fixed arrival rate.
func TestOpenLoopMode(t *testing.T) {
	_, url := newTarget(t, serve.Config{})
	rep, err := Run(context.Background(), Options{
		BaseURL:     url,
		Scenario:    "monitor",
		Duration:    300 * time.Millisecond,
		Concurrency: 2,
		Rate:        200,
		Scale:       0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Errorf("mode = %q, want open", rep.Mode)
	}
	if !rep.ServerMatch {
		t.Errorf("request accounting mismatch: client %d, server %d", rep.Requests, rep.ServerRequests)
	}
	// ~60 scheduled ticks in the window; setup adds 10 — the exact count
	// is timing-dependent, but an order-of-magnitude floor catches a
	// stuck scheduler.
	if rep.Requests < 20 {
		t.Errorf("open loop issued only %d requests", rep.Requests)
	}
}

func TestUnknownScenario(t *testing.T) {
	_, err := Run(context.Background(), Options{BaseURL: "http://127.0.0.1:1", Scenario: "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("err = %v, want unknown scenario", err)
	}
	names := ScenarioNames()
	if len(names) != 5 {
		t.Errorf("ScenarioNames = %v, want 5 presets", names)
	}
	for _, n := range names {
		if ScenarioDesc(n) == "" {
			t.Errorf("scenario %s has no description", n)
		}
	}
}
