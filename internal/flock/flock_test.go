package flock

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/model"
)

func buildDB(t *testing.T, rows ...[]geom.Point) *model.DB {
	t.Helper()
	db := model.NewDB()
	for _, row := range rows {
		var samples []model.Sample
		for j, p := range row {
			if math.IsNaN(p.X) {
				continue
			}
			samples = append(samples, model.Sample{T: model.Tick(j), P: p})
		}
		tr, err := model.NewTrajectory("", samples)
		if err != nil {
			t.Fatal(err)
		}
		db.Add(tr)
	}
	return db
}

func TestDiscGroupsSimple(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(10, 0)}
	groups := discGroupsAt(pts, 1)
	// {0,1} fit in a radius-1 disc; {2} alone.
	foundPair, foundSolo := false, false
	for _, g := range groups {
		if len(g) == 2 && g[0] == 0 && g[1] == 1 {
			foundPair = true
		}
		if len(g) == 1 && g[0] == 2 {
			foundSolo = true
		}
	}
	if !foundPair || !foundSolo {
		t.Errorf("groups = %v", groups)
	}
}

func TestDiscGroupsDiameterBoundary(t *testing.T) {
	// Two points exactly 2r apart fit in one disc (touching the boundary).
	groups := discGroupsAt([]geom.Point{geom.Pt(0, 0), geom.Pt(2, 0)}, 1)
	together := false
	for _, g := range groups {
		if len(g) == 2 {
			together = true
		}
	}
	if !together {
		t.Errorf("points at distance 2r should share a disc: %v", groups)
	}
	// Slightly farther apart they must not.
	groups = discGroupsAt([]geom.Point{geom.Pt(0, 0), geom.Pt(2.001, 0)}, 1)
	for _, g := range groups {
		if len(g) == 2 {
			t.Errorf("points beyond 2r share a disc: %v", groups)
		}
	}
}

func TestDiscGroupsCoincidentPoints(t *testing.T) {
	groups := discGroupsAt([]geom.Point{geom.Pt(5, 5), geom.Pt(5, 5), geom.Pt(5, 5)}, 0.5)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Errorf("coincident points: %v", groups)
	}
}

func TestDiscGroupsThreePointsNeedTwoPointCenter(t *testing.T) {
	// An equilateral-ish triangle with side ~1.7 and r=1: no point-centered
	// disc covers all three, but the circumcenter does.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1.7, 0), geom.Pt(0.85, 1.47)}
	groups := discGroupsAt(pts, 1)
	all3 := false
	for _, g := range groups {
		if len(g) == 3 {
			all3 = true
		}
	}
	if !all3 {
		t.Errorf("triangle should fit a radius-1 disc: %v", groups)
	}
}

func TestDiscoverBasicFlock(t *testing.T) {
	db := buildDB(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)},
		[]geom.Point{geom.Pt(0.5, 0), geom.Pt(1.5, 0), geom.Pt(2.5, 0)},
		[]geom.Point{geom.Pt(50, 0), geom.Pt(51, 0), geom.Pt(52, 0)},
	)
	fs, err := Discover(db, Params{M: 2, K: 3, R: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("flocks = %v", fs)
	}
	if fs[0].Start != 0 || fs[0].End != 2 || len(fs[0].Objects) != 2 {
		t.Errorf("flock = %v", fs[0])
	}
	if fs[0].Lifetime() != 3 {
		t.Errorf("lifetime = %d", fs[0].Lifetime())
	}
}

func TestDiscoverValidation(t *testing.T) {
	db := buildDB(t, []geom.Point{geom.Pt(0, 0)})
	if _, err := Discover(db, Params{M: 0, K: 1, R: 1}); err == nil {
		t.Error("invalid params accepted")
	}
	if fs, err := Discover(model.NewDB(), Params{M: 1, K: 1, R: 1}); err != nil || fs != nil {
		t.Errorf("empty DB: %v %v", fs, err)
	}
}

// TestLossyFlockProblem reproduces Figure 1: four objects travel together in
// a line formation whose extent slightly exceeds the flock disc, so the
// flock query loses o3 while the convoy query (density connection) captures
// the whole group.
func TestLossyFlockProblem(t *testing.T) {
	const ticks = 5
	row := func(y float64) []geom.Point {
		pts := make([]geom.Point, ticks)
		for i := range pts {
			pts[i] = geom.Pt(float64(i)*2, y)
		}
		return pts
	}
	// Line formation spanning 3.3 in y: any radius-1.65 disc covers it, but
	// the flock query is issued with r = 1.2 — o3 at the end is clipped.
	db := buildDB(t, row(0), row(1.1), row(2.2), row(3.3))

	flocks, err := Discover(db, Params{M: 3, K: ticks, R: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	var flockSizes []int
	for _, f := range flocks {
		flockSizes = append(flockSizes, len(f.Objects))
	}
	sort.Ints(flockSizes)
	if len(flocks) == 0 || flockSizes[len(flockSizes)-1] != 3 {
		t.Fatalf("expected the disc to clip the group to 3 members, got %v", flocks)
	}

	convoys, err := core.CMC(db, core.Params{M: 3, K: ticks, Eps: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(convoys) != 1 || convoys[0].Size() != 4 {
		t.Fatalf("convoy should capture all 4 objects: %v", convoys)
	}
}

// Property: every reported flock is genuinely coverable by a radius-R disc
// at every tick of its interval (soundness of the disc enumeration).
func TestPropFlockSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for iter := 0; iter < 25; iter++ {
		nObj, nTicks := 3+r.Intn(4), 5+r.Intn(6)
		rows := make([][]geom.Point, nObj)
		for o := range rows {
			row := make([]geom.Point, nTicks)
			x, y := r.Float64()*10, r.Float64()*10
			for i := range row {
				x += r.Float64()*2 - 1
				y += r.Float64()*2 - 1
				row[i] = geom.Pt(x, y)
			}
			rows[o] = row
		}
		db := buildDB(t, rows...)
		p := Params{M: 2, K: int64(2 + r.Intn(3)), R: 0.8 + r.Float64()*1.5}
		fs, err := Discover(db, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fs {
			if f.Lifetime() < p.K {
				t.Fatalf("flock below lifetime: %v", f)
			}
			if len(f.Objects) < p.M {
				t.Fatalf("flock below cardinality: %v", f)
			}
			for tick := f.Start; tick <= f.End; tick++ {
				var pts []geom.Point
				for _, id := range f.Objects {
					pt, ok := db.Traj(id).LocationAt(tick)
					if !ok {
						t.Fatalf("flock member %d absent at tick %d", id, tick)
					}
					pts = append(pts, pt)
				}
				if !coverableByDisc(pts, p.R) {
					t.Fatalf("flock %v not coverable at tick %d", f, tick)
				}
			}
		}
	}
}

// coverableByDisc reports whether all points fit in some radius-r disc,
// using the same candidate-center argument as the implementation but
// written independently (centers from pairs and single points). Candidate
// centers are constructed from the exact radius while membership is checked
// with a tiny relative slack, so constructed centers sitting exactly on the
// boundary are not rejected by a 1-ulp rounding error.
func coverableByDisc(pts []geom.Point, r float64) bool {
	if len(pts) <= 1 {
		return true
	}
	rr := r * (1 + 1e-9)
	check := func(c geom.Point) bool {
		for _, p := range pts {
			if geom.D(c, p) > rr {
				return false
			}
		}
		return true
	}
	for _, p := range pts {
		if check(p) {
			return true
		}
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			d := geom.D(pts[i], pts[j])
			if d > 2*r || d == 0 {
				continue
			}
			mid := pts[i].Lerp(pts[j], 0.5)
			h := math.Sqrt(math.Max(0, r*r-d*d/4))
			nx, ny := -(pts[j].Y-pts[i].Y)/d, (pts[j].X-pts[i].X)/d
			if check(geom.Pt(mid.X+nx*h, mid.Y+ny*h)) || check(geom.Pt(mid.X-nx*h, mid.Y-ny*h)) {
				return true
			}
		}
	}
	return false
}
