// Package flock implements the disc-based flock pattern (Gudmundsson & van
// Kreveld; Al-Naymat et al.) that the paper contrasts with convoys: a flock
// is a group of at least m objects that stay together within a circular
// region of radius r during at least k consecutive time points.
//
// The package exists to reproduce the lossy-flock problem of Figure 1 — a
// fixed-radius disc clips members that a density-based convoy captures — and
// to serve as a baseline in the examples. Discovery is exact: at every tick
// the maximal disc groups are enumerated from the classic O(n³) candidate-
// center construction (each maximal group of points coverable by a radius-r
// disc admits a cover whose boundary passes through one or two of the
// points), and groups are chained across ticks with the same
// intersection-based candidate machinery as CMC.
package flock

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/model"
)

// Params are the flock query parameters.
type Params struct {
	// M is the minimum number of objects in a flock.
	M int
	// K is the minimum lifetime in consecutive ticks.
	K int64
	// R is the disc radius: at every tick all members must fit in some
	// disc of radius R.
	R float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.M < 1 || p.K < 1 || p.R < 0 {
		return errors.New("flock: m and k must be ≥ 1 and r ≥ 0")
	}
	return nil
}

// Flock is one answer: a fixed group of objects and the inclusive tick
// interval during which they stayed within a radius-R disc.
type Flock struct {
	Objects    []model.ObjectID
	Start, End model.Tick
}

// Lifetime returns the number of ticks the flock spans.
func (f Flock) Lifetime() int64 { return int64(f.End-f.Start) + 1 }

// String renders the flock compactly.
func (f Flock) String() string {
	return fmt.Sprintf("flock%v[%d,%d]", f.Objects, f.Start, f.End)
}

// discGroupsAt enumerates the maximal groups of points (by index) that fit
// in some radius-r disc. Candidate disc centers: every point itself and the
// two centers of radius-r circles through each pair of points at distance
// ≤ 2r. Dominated (subset) groups are removed.
func discGroupsAt(pts []geom.Point, r float64) [][]int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	var centers []geom.Point
	centers = append(centers, pts...)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := geom.D(pts[i], pts[j])
			if d > 2*r || d == 0 {
				continue
			}
			mid := pts[i].Lerp(pts[j], 0.5)
			// Height of the circumcenter above the chord midpoint.
			h := math.Sqrt(math.Max(0, r*r-d*d/4))
			// Unit normal to the chord.
			nx, ny := -(pts[j].Y-pts[i].Y)/d, (pts[j].X-pts[i].X)/d
			centers = append(centers,
				geom.Pt(mid.X+nx*h, mid.Y+ny*h),
				geom.Pt(mid.X-nx*h, mid.Y-ny*h),
			)
		}
	}
	// Tiny slack absorbs the floating-point error of constructed centers.
	rr := r * (1 + 1e-12)
	seen := map[string]bool{}
	var groups [][]int
	for _, c := range centers {
		var g []int
		for i, p := range pts {
			if geom.D(c, p) <= rr {
				g = append(g, i)
			}
		}
		if len(g) == 0 {
			continue
		}
		key := fmt.Sprint(g)
		if !seen[key] {
			seen[key] = true
			groups = append(groups, g)
		}
	}
	// Drop subset groups.
	sort.Slice(groups, func(i, j int) bool { return len(groups[i]) > len(groups[j]) })
	var maximal [][]int
	for _, g := range groups {
		sub := false
		for _, m := range maximal {
			if isSubset(g, m) {
				sub = true
				break
			}
		}
		if !sub {
			maximal = append(maximal, g)
		}
	}
	return maximal
}

func isSubset(a, b []int) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// Discover answers the flock query over the database and returns all
// maximal flocks, sorted by (Start, End).
func Discover(db *model.DB, p Params) ([]Flock, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lo, hi, ok := db.TimeRange()
	if !ok {
		return nil, nil
	}

	type cand struct {
		objs       []model.ObjectID
		start, end model.Tick
	}
	var out []Flock
	report := func(c *cand) {
		if int64(c.end-c.start)+1 >= p.K {
			out = append(out, Flock{Objects: c.objs, Start: c.start, End: c.end})
		}
	}
	var live []*cand
	for t := lo; t <= hi; t++ {
		var ids []model.ObjectID
		var pts []geom.Point
		for _, tr := range db.Trajectories() {
			if pt, okk := tr.LocationAt(t); okk {
				ids = append(ids, tr.ID)
				pts = append(pts, pt)
			}
		}
		var groups [][]model.ObjectID
		if len(ids) >= p.M {
			for _, g := range discGroupsAt(pts, p.R) {
				if len(g) < p.M {
					continue
				}
				objs := make([]model.ObjectID, len(g))
				for i, idx := range g {
					objs[i] = ids[idx]
				}
				groups = append(groups, objs)
			}
		}
		next := make([]*cand, 0, len(groups))
		index := map[string]int{}
		add := func(objs []model.ObjectID, start model.Tick) {
			key := fmt.Sprint(objs)
			if i, dup := index[key]; dup {
				if start < next[i].start {
					next[i].start = start
				}
				return
			}
			index[key] = len(next)
			next = append(next, &cand{objs: objs, start: start, end: t})
		}
		for _, v := range live {
			survived := false
			for _, g := range groups {
				inter := intersect(v.objs, g)
				if len(inter) < p.M {
					continue
				}
				add(inter, v.start)
				if len(inter) == len(v.objs) {
					survived = true
				}
			}
			if !survived {
				report(v)
			}
		}
		for _, g := range groups {
			add(g, t)
		}
		live = next
	}
	for _, v := range live {
		report(v)
	}
	out = dropDominated(out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out, nil
}

func intersect(a, b []model.ObjectID) []model.ObjectID {
	var outp []model.ObjectID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			outp = append(outp, a[i])
			i++
			j++
		}
	}
	return outp
}

// dropDominated removes flocks strictly covered by another flock in both
// object and time dimensions. Exact duplicates cannot occur: the per-tick
// candidate sets are deduplicated by object set.
func dropDominated(fs []Flock) []Flock {
	var keep []Flock
	for i, f := range fs {
		dominated := false
		for j, g := range fs {
			if i == j {
				continue
			}
			identical := g.Start == f.Start && g.End == f.End && len(g.Objects) == len(f.Objects)
			if !identical && g.Start <= f.Start && f.End <= g.End && isSubsetIDs(f.Objects, g.Objects) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, f)
		}
	}
	return keep
}

func isSubsetIDs(a, b []model.ObjectID) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}
