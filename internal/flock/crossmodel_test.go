package flock

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/model"
)

// Cross-model containment property: every flock with disc radius r is a
// clique at distance 2r at each of its ticks (all members pairwise within
// the disc's diameter), hence density-connected at e = 2r — so the convoy
// answer for (m, k, e = 2r) must contain a convoy that dominates it. This
// pins the paper's Section 1 relationship between the two patterns: convoys
// generalize flocks, never the other way around.
func TestPropEveryFlockInsideSomeConvoy(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	for iter := 0; iter < 20; iter++ {
		nObj, nTicks := 3+r.Intn(4), 6+r.Intn(8)
		rows := make([][]geom.Point, nObj)
		// Anchor-following movement so flocks actually occur.
		anchor := make([]geom.Point, nTicks)
		x, y := r.Float64()*10, r.Float64()*10
		for i := range anchor {
			x += r.Float64()*2 - 1
			y += r.Float64()*2 - 1
			anchor[i] = geom.Pt(x, y)
		}
		for o := range rows {
			row := make([]geom.Point, nTicks)
			ox, oy := r.Float64()*3, r.Float64()*3
			for i := range row {
				if r.Float64() < 0.2 {
					ox, oy = r.Float64()*6, r.Float64()*6 // drift to a new offset
				}
				row[i] = geom.Pt(anchor[i].X+ox, anchor[i].Y+oy)
			}
			rows[o] = row
		}
		db := buildDB(t, rows...)

		m := 2
		k := int64(2 + r.Intn(3))
		radius := 1 + r.Float64()*2
		flocks, err := Discover(db, Params{M: m, K: k, R: radius})
		if err != nil {
			t.Fatal(err)
		}
		if len(flocks) == 0 {
			continue
		}
		convoys, err := core.CMC(db, core.Params{M: m, K: k, Eps: 2 * radius})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range flocks {
			covered := false
			for _, c := range convoys {
				if c.Start <= f.Start && f.End <= c.End && subsetIDs(f.Objects, c.Objects) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("iter %d: flock %v not inside any convoy (e=2r=%g):\n%v",
					iter, f, 2*radius, convoys)
			}
		}
	}
}

func subsetIDs(a, b []model.ObjectID) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}
