// Ablation benchmarks isolating the design choices DESIGN.md §6 calls out:
// Lemma 2 box pruning, CuTS* partition clipping, dominated-candidate
// pruning, the actual-tolerance bounds, and the grid index behind snapshot
// DBSCAN. Each switch changes only the runtime, never the answer (enforced
// by core's ablation tests).
package convoys_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dbscan"
	"repro/internal/geom"
)

// benchRunConfig times a full CuTS run under the given configuration on the
// Cattle profile — the shape that stresses the filter (long histories),
// which is where the ablation switches matter.
func benchRunConfig(b *testing.B, cfg core.Config) {
	prof := datagen.Cattle(benchScale, benchSeed+100)
	db := prof.Generate()
	p := core.Params{M: prof.M, K: prof.K, Eps: prof.Eps}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Run(db, p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBoxPrune(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		benchRunConfig(b, core.Config{Variant: core.VariantCuTS})
	})
	b.Run("off", func(b *testing.B) {
		benchRunConfig(b, core.Config{Variant: core.VariantCuTS, NoBoxPrune: true})
	})
}

func BenchmarkAblationClipTime(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		benchRunConfig(b, core.Config{Variant: core.VariantCuTSStar})
	})
	b.Run("off", func(b *testing.B) {
		benchRunConfig(b, core.Config{Variant: core.VariantCuTSStar, NoClipTime: true})
	})
}

func BenchmarkAblationCandidatePruning(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		benchRunConfig(b, core.Config{Variant: core.VariantCuTS})
	})
	b.Run("off", func(b *testing.B) {
		benchRunConfig(b, core.Config{Variant: core.VariantCuTS, NoCandidatePruning: true})
	})
}

func BenchmarkAblationToleranceMode(b *testing.B) {
	b.Run("actual", func(b *testing.B) {
		benchRunConfig(b, core.Config{Variant: core.VariantCuTSStar})
	})
	b.Run("global", func(b *testing.B) {
		benchRunConfig(b, core.Config{Variant: core.VariantCuTSStar, Tolerance: dbscan.GlobalTolerance})
	})
}

// BenchmarkAblationGridVsBrute isolates the snapshot-DBSCAN neighbor search
// (the inner loop of CMC and of the refinement step).
func BenchmarkAblationGridVsBrute(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, 600)
	for i := range pts {
		// Clustered blobs plus scatter, like a snapshot of the Taxi profile.
		if i%3 == 0 {
			cx, cy := float64(r.Intn(6))*300, float64(r.Intn(6))*300
			pts[i] = geom.Pt(cx+r.Float64()*60, cy+r.Float64()*60)
		} else {
			pts[i] = geom.Pt(r.Float64()*2000, r.Float64()*2000)
		}
	}
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dbscan.Cluster(pts, 40, 3)
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dbscan.ClusterBrute(pts, 40, 3)
		}
	})
}
